"""Resharding benchmarks: adaptive vs static topology under Zipf-x skew.

The scenario the online topology manager exists for: a service built
balanced over a uniform base set is then hit by a *skewed* mixed stream
-- Zipf-x inserts concentrated in a narrow hot band, deletes of recent
points, interleaved hot and wide probes.  Three services run the
identical workload:

* **static** -- the pre-PR behaviour: shard cuts frozen between
  compactions, the hot band's weight piles up in the level components
  (and one base shard), hot queries pay a growing level fan-out and
  tombstone rescans of ever-bigger components;
* **adaptive** -- ``ServiceConfig(adaptive_topology=True)``: the
  :class:`~repro.service.topology.TopologyManager` splits the hot shard
  as its range load crosses the threshold, folding the hot slice of the
  levels and memtable into the split children, each split a bounded
  local operation charged to maintenance;
* **uniform baseline** -- the ideal: a service freshly built
  size-balanced over the *final* live point set, probed with the same
  query sequence.  This is what a stop-the-world global rebuild would
  buy; the adaptive service has to get near it without ever paying one.

Claims (ISSUE 5 acceptance), asserted by :func:`check`:

* **mean query I/O**: adaptive stays within 1.3x of the uniform
  baseline at n >= 50k, where static exceeds 2x;
* **p99 single-request transfers**: adaptive stays near the baseline
  (within 2x) while static's p99 degrades beyond it;
* **bounded steps**: no single split/merge charges more than
  ``SPLIT_COST_FACTOR * ceil(touched / B)`` transfers -- the hot shard's
  own ``O(n_shard/B)`` rebuild cost, never a global rebuild -- and the
  static service's compaction count stays 0 (nothing global happened);
* the **ledger partition** ``attributed + maintenance == total - build``
  holds on every cell.

``benchmarks/bench_resharding.py`` drives the sweep (pytest or
``--quick`` CLI) and persists the table to ``BENCH_resharding.json``.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Sequence, Tuple

from repro.bench.reporting import BenchmarkTable
from repro.core.point import Point
from repro.core.queries import FourSidedQuery, RangeQuery, TopOpenQuery
from repro.engine import QueryRequest, SkylineEngine
from repro.service import ServiceConfig
from repro.workloads import uniform_points, zipf_x_points

Summary = Dict[str, Dict[str, float]]

#: Per-step cost bound: a split/merge touching ``t`` records may charge at
#: most this many transfers per ``ceil(t/B)`` block of them.  The factor
#: covers reading the inputs, writing the two children and building their
#: static indexes -- a constant number of passes over the data (the
#: codebase's static build measures ~15-25 transfers per input block), so
#: the charge is O(n_shard/B) with the constant made explicit and
#: asserted.  :func:`check` additionally pins *locality*: the worst step
#: must stay under a quarter of the measured cost of one global rebuild.
SPLIT_COST_FACTOR = 32.0
GLOBAL_REBUILD_FRACTION = 0.25

#: On the per-shard-tower path a split or merge is a *metadata move*: the
#: retiring bases are adopted as zero-I/O components and whole tower
#: component sets change owner by reference, so the only charges are the
#: children's empty base builds plus the durable topology record.  The
#: worst split/merge step must therefore stay under this fraction of the
#: rebuild-style per-input-block bound folds are still allowed.
METADATA_MOVE_FRACTION = 0.1

HOT_CENTER = 0.5
HOT_HALF_WIDTH = 0.02


def _probes(universe: int, count: int, seed: int) -> List[object]:
    """Alternating narrow hot-band and wide probes (3 hot : 1 wide, the
    skew a hot region attracts).

    Hot probes use *narrow* x-windows (well under one shard's range):
    the access pattern x-sharding serves -- a balanced topology answers
    them from one or two structures, while a layout whose hot region's
    weight sits in few fat structures cannot prune anything.
    """
    rng = random.Random(seed)
    center = HOT_CENTER * universe
    half = HOT_HALF_WIDTH * universe
    probes: List[object] = []
    for i in range(count):
        if i % 4 == 3:
            lo, hi = sorted(rng.uniform(0, universe) for _ in range(2))
            probes.append(TopOpenQuery(lo, hi, rng.uniform(0, universe / 2)))
        else:
            mid = rng.uniform(center - half, center + half)
            width = rng.uniform(0.0005, 0.005) * universe
            lo, hi = mid - width / 2, mid + width / 2
            if i % 2 == 0:
                probes.append(TopOpenQuery(lo, hi, rng.uniform(0, universe)))
            else:
                y_lo, y_hi = sorted(rng.uniform(0, universe) for _ in range(2))
                probes.append(FourSidedQuery(lo, hi, y_lo, y_hi))
    return probes


def _percentile(values: Sequence[int], q: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return float(ordered[index])


def _service_config(mode: str, **common: object) -> ServiceConfig:
    return ServiceConfig(adaptive_topology=(mode == "adaptive"), **common)


def _probe_pass(engine: SkylineEngine, probes: List[object]) -> List[int]:
    """One cold-cache pass over the probe sequence; per-probe transfers.

    Cold caches make each request pay its real worst-case transfers --
    warm pools would hide exactly the structure growth this bench exists
    to expose.
    """
    costs: List[int] = []
    for probe in probes:
        engine.drop_caches()
        response = engine.query(QueryRequest(probe, consistency="fresh"))
        costs.append(response.report.blocks)
    return costs


def _drive(
    engine: SkylineEngine,
    stream: List[Point],
    probes: List[object],
    query_every: int,
    delete_every: int,
) -> Tuple[List[int], Dict[str, float]]:
    """Run the mixed stream; returns during-run probe costs and counters."""
    service = engine.backend.service
    recent: List[Point] = []
    probe_iter = iter(probes)
    query_costs: List[int] = []
    deletes = 0
    for i, point in enumerate(stream):
        if i % delete_every == delete_every - 1 and recent:
            victim = recent.pop()
            result = engine.delete(victim)
            assert result.applied
            deletes += 1
        else:
            result = engine.insert(point)
            # Deletes target near-past inserts: hot data churns hot.
            recent.append(point)
            if len(recent) > 8:
                recent.pop(0)
        if i % query_every == query_every - 1:
            try:
                probe = next(probe_iter)
            except StopIteration:
                probe_iter = iter(probes)
                probe = next(probe_iter)
            engine.drop_caches()
            response = engine.query(QueryRequest(probe, consistency="fresh"))
            query_costs.append(response.report.blocks)
    assert (
        engine.attributed_io() + engine.maintenance_io()
        == engine.io_total() - engine.build_io
    ), "ledger partition broke"
    counters = {
        "deletes": float(deletes),
        "splits": float(service.topology.splits),
        "merges": float(service.topology.merges),
        "folds": float(service.topology.folds),
        "compactions": float(service.compactions),
        "shards": float(len(service.shards)),
        "tombstones": float(len(service.delta.tombstones)),
    }
    return query_costs, counters


def run_resharding_sweep(
    n_base: int = 50_000,
    updates: int = 16_000,
    query_every: int = 24,
    delete_every: int = 8,
    shard_count: int = 32,
    block_size: int = 64,
    memory_blocks: int = 32,
    delta_threshold: int = 128,
    level_growth: int = 2,
    merge_step_blocks: int = 8,
    split_load_factor: float = 2.0,
    merge_load_factor: float = 0.4,
    fold_pressure_factor: float = 0.02,
    topology_check_every: int = 8,
    universe: int = 1_000_000,
    seed: int = 0,
) -> Tuple[BenchmarkTable, Summary]:
    """The adaptive-vs-static-vs-uniform-baseline sweep (module doc).

    Nothing global may happen in any evolving cell -- the static service
    shows what frozen cuts cost and the adaptive one must absorb the skew
    with bounded local splits/merges alone; ``compactions == 0`` is
    asserted for both.
    """
    base = uniform_points(n_base, universe=universe, seed=seed)
    stream = zipf_x_points(
        updates,
        universe=universe,
        hot_center=HOT_CENTER,
        ident_base=10_000_000,
        seed=seed + 1,
    )
    probes = _probes(universe, max(4, updates // query_every), seed + 2)
    common = dict(
        shard_count=shard_count,
        block_size=block_size,
        memory_blocks=memory_blocks,
        delta_threshold=delta_threshold,
        level_growth=level_growth,
        merge_step_blocks=merge_step_blocks,
        split_load_factor=split_load_factor,
        merge_load_factor=merge_load_factor,
        fold_pressure_factor=fold_pressure_factor,
        topology_check_every=topology_check_every,
        # auto_compact on the leveled path only seals the memtable and
        # schedules bounded merges -- never a global rebuild (asserted:
        # compactions stays 0 in every cell).
        auto_compact=True,
    )
    table = BenchmarkTable(
        f"Resharding under Zipf-x skew -- base n={n_base}, {updates} mixed "
        f"updates, B={block_size}, split at {split_load_factor}x target"
    )
    summary: Summary = {}
    final_live: List[Point] = []
    for mode in ("static", "adaptive"):
        engine = SkylineEngine.sharded(base, _service_config(mode, **common))
        started = time.perf_counter()
        during_costs, counters = _drive(
            engine, stream, probes, query_every, delete_every
        )
        service = engine.backend.service
        worst_step_ratio = 0.0
        worst_step_io = 0.0
        worst_move_ratio = 0.0
        if mode == "adaptive":
            final_live = service.live_points()
            for entry in service.topology.history:
                touched = max(1, int(entry["touched"]))
                blocks = -(-touched // block_size)  # ceil
                ratio = int(entry["charged"]) / blocks
                if entry["op"] in ("split", "merge"):
                    # Metadata moves: ownership changes, no record blocks.
                    worst_move_ratio = max(worst_move_ratio, ratio)
                worst_step_ratio = max(worst_step_ratio, ratio)
                worst_step_io = max(worst_step_io, float(entry["charged"]))
        # The headline metric is the *end state*: one full cold probe
        # pass after the whole skewed stream has landed, identical for
        # all three services (the during-run costs average over the
        # not-yet-degraded early states and would flatter the static
        # topology).
        query_costs = _probe_pass(engine, probes)
        elapsed = time.perf_counter() - started
        cell = {
            "seconds": round(elapsed, 6),
            "mean_query_io": round(sum(query_costs) / len(query_costs), 3),
            "p99_query_io": _percentile(query_costs, 0.99),
            "max_query_io": float(max(query_costs)),
            "during_mean_query_io": round(
                sum(during_costs) / len(during_costs), 3
            ),
            "during_p99_query_io": _percentile(during_costs, 0.99),
            "worst_step_ratio": round(worst_step_ratio, 3),
            "worst_move_ratio": round(worst_move_ratio, 3),
            "worst_step_io": worst_step_io,
            "maintenance_io": float(engine.maintenance_io()),
            "ledger_ok": 1.0,
            **counters,
        }
        summary[mode] = cell
    # The ideal a stop-the-world global rebuild would buy: size-balanced
    # cuts over the final live set, same config, probed identically.
    started = time.perf_counter()
    baseline = SkylineEngine.sharded(
        final_live, _service_config("static", **common)
    )
    baseline_costs = _probe_pass(baseline, probes)
    summary["uniform-baseline"] = {
        "seconds": round(time.perf_counter() - started, 6),
        "mean_query_io": round(sum(baseline_costs) / len(baseline_costs), 3),
        "p99_query_io": _percentile(baseline_costs, 0.99),
        "max_query_io": float(max(baseline_costs)),
        "shards": float(len(baseline.backend.service.shards)),
        # The measured price of one stop-the-world global rebuild over
        # the final live set: the locality yardstick for split costs.
        "global_rebuild_io": float(baseline.build_io),
        "ledger_ok": 1.0,
    }
    for mode in ("uniform-baseline", "static", "adaptive"):
        cell = summary[mode]
        table.add(
            measured_io=cell["mean_query_io"],
            seconds=cell.get("seconds"),
            topology=mode,
            p99=cell["p99_query_io"],
            shards=cell["shards"],
            splits=cell.get("splits", 0.0),
            merges=cell.get("merges", 0.0),
            folds=cell.get("folds", 0.0),
            compactions=cell.get("compactions", 0.0),
            worst_step_ratio=cell.get("worst_step_ratio", 0.0),
            maintenance_io=cell.get("maintenance_io", 0.0),
        )
    return table, summary


def check(summary: Summary) -> None:
    """The acceptance assertions both pytest and the CLI enforce."""
    baseline = summary["uniform-baseline"]
    static = summary["static"]
    adaptive = summary["adaptive"]
    base_mean = max(1e-9, baseline["mean_query_io"])
    adaptive_ratio = adaptive["mean_query_io"] / base_mean
    static_ratio = static["mean_query_io"] / base_mean
    assert adaptive_ratio <= 1.3, (
        f"adaptive mean query I/O {adaptive['mean_query_io']} is "
        f"{adaptive_ratio:.2f}x the uniform baseline {baseline['mean_query_io']}"
        " (must stay within 1.3x)"
    )
    assert static_ratio >= 2.0, (
        f"static mean query I/O {static['mean_query_io']} is only "
        f"{static_ratio:.2f}x the uniform baseline -- the degradation the "
        "adaptive topology protects against is not being exercised"
    )
    base_p99 = max(1e-9, baseline["p99_query_io"])
    assert adaptive["p99_query_io"] / base_p99 <= 2.0, (
        f"adaptive p99 {adaptive['p99_query_io']} strays beyond 2x the "
        f"baseline p99 {baseline['p99_query_io']}"
    )
    assert adaptive["splits"] >= 1, "the skew never triggered a split"
    assert adaptive["compactions"] == 0 and static["compactions"] == 0, (
        "no service may pay a global rebuild in this sweep"
    )
    assert adaptive["worst_step_ratio"] <= SPLIT_COST_FACTOR, (
        f"a topology step charged {adaptive['worst_step_ratio']:.2f}x "
        f"ceil(touched/B), beyond the O(n_shard/B) factor {SPLIT_COST_FACTOR}"
    )
    move_bound = METADATA_MOVE_FRACTION * SPLIT_COST_FACTOR
    assert adaptive["worst_move_ratio"] <= move_bound, (
        f"a split/merge charged {adaptive['worst_move_ratio']:.2f}x "
        f"ceil(touched/B) -- not a metadata move (bound {move_bound}: "
        "per-shard towers hand components over whole, nothing is rebuilt)"
    )
    rebuild = max(1.0, baseline["global_rebuild_io"])
    assert adaptive["worst_step_io"] <= GLOBAL_REBUILD_FRACTION * rebuild, (
        f"the worst step ({adaptive['worst_step_io']} transfers) is not "
        f"local: a full global rebuild measures {rebuild}"
    )
    assert adaptive["ledger_ok"] and static["ledger_ok"]
