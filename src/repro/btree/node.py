"""Node payloads of the external-memory B-tree.

A node occupies exactly one simulated disk block.  Leaves hold up to ``B``
``(key, value)`` entries; internal nodes hold up to ``fanout`` child block
ids with separator keys and an aggregate per child (used by the range-max
variant).  Payload sizes are checked by the disk model so a node can never
silently exceed a block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional


@dataclass
class LeafNode:
    """A leaf block: sorted keys with their values."""

    keys: List[Any] = field(default_factory=list)
    values: List[Any] = field(default_factory=list)
    next_leaf: Optional[int] = None  # sibling pointer for range scans

    @property
    def is_leaf(self) -> bool:
        return True

    def record_size(self) -> int:
        """Size in records (one per key/value pair)."""
        return max(1, len(self.keys))

    def __len__(self) -> int:
        return len(self.keys)


@dataclass
class InternalNode:
    """An internal block: child pointers, separator keys and aggregates.

    ``separators[i]`` is the largest key in the subtree of ``children[i]``;
    ``aggregates[i]`` is an application-defined summary (e.g. max y) of that
    subtree.
    """

    children: List[int] = field(default_factory=list)
    separators: List[Any] = field(default_factory=list)
    aggregates: List[Any] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return False

    def record_size(self) -> int:
        """Size in records (one per child entry)."""
        return max(1, len(self.children))

    def __len__(self) -> int:
        return len(self.children)

    def child_index_for(self, key: Any) -> int:
        """Index of the child whose subtree should contain ``key``."""
        for index, separator in enumerate(self.separators):
            if key <= separator:
                return index
        return len(self.children) - 1
