"""Query planning: structure choice and the paper's predicted I/O bound.

``explain`` never executes anything.  A :class:`QueryPlan` answers two
questions about a request *before* it runs:

1. **Which structure serves it.**  The dispatch mirrors
   :meth:`repro.RangeSkylineIndex.query` exactly: the *easy* variants of
   Figure 2 (top-open, dominance, contour, 1-sided, unbounded) go to the
   top-open structure; right-open goes to the axis-swapped top-open
   structure; everything else (left-open, bottom-open, anti-dominance,
   slabs, general 4-sided) is provably as hard as the 4-sided case
   (Theorem 5) and goes to the 4-sided structure.

2. **What the paper says it should cost.**  The relevant bound --
   Theorem 1's ``O(log_B n + k/B)`` for static top-open/right-open,
   Theorem 4's ``O(log_{2B^eps}(n/B) + k/B^(1-eps))`` for the dynamic
   structure, Theorem 6's ``O((n/B)^eps + k/B)`` for 4-sided -- is
   *instantiated* with the backend's actual ``B``, ``n`` and ``eps``:
   the plan carries the numeric search term (k-independent) and the
   per-reported-point term, so ``plan.predicted_io(k)`` is a number a
   report can sit next to a measured ledger delta.

On the sharded backend a query fans out to the shards whose x-range its
rectangle intersects; the plan then carries one scope per *visited* shard
(each a static structure over that shard's resident points) and the
search term is the sum over the visited scopes -- pruned shards
contribute nothing, which is exactly the service's pruning win.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.engine.requests import QueryRequest

#: Variants served by the top-open structure (the paper's "easy" side,
#: minus right-open which needs the swapped copy).
EASY_TOP_OPEN_VARIANTS = frozenset(
    {"top-open", "dominance", "contour", "1-sided", "unbounded"}
)

STRUCTURE_TOP_OPEN = "top-open"
STRUCTURE_RIGHT_OPEN = "right-open"
STRUCTURE_FOUR_SIDED = "four-sided"

#: Paper bounds, by (structure, dynamic?).
BOUND_STATIC_EASY = "O(log_B n + k/B)"  # Theorems 1 and 6 (swapped)
BOUND_DYNAMIC_EASY = "O(log_{2B^eps}(n/B) + k/B^(1-eps))"  # Theorem 4
BOUND_FOUR_SIDED = "O((n/B)^eps + k/B)"  # Theorem 6

#: Update-path bounds the sharded backend instantiates (Theorems 4/6 pay
#: O(log_B n) amortized per update via the logarithmic method; the leveled
#: subsystem realises it with growth factor g and memtable capacity c).
BOUND_UPDATE_LEVELED = "O((g/B) * log_g(n/c)) amortized per update"
BOUND_UPDATE_THRESHOLD = "O(n/B) worst-case rebuild at the delta threshold"


def amortized_update_io(
    n: int, block_size: int, growth: int, memtable_capacity: int
) -> float:
    """The leveled path's amortized per-update transfers, instantiated.

    Each record is rewritten at most ``g`` times per level (leveling) over
    ``log_g(n/c)`` levels, at ``1/B`` transfers per rewritten record.
    """
    b = max(2, block_size)
    g = max(2, growth)
    levels = max(1.0, math.log(max(2.0, n / max(1, memtable_capacity)), g))
    return g * levels / b


def structure_for(variant: str) -> str:
    """The structure :meth:`repro.RangeSkylineIndex.query` dispatches to."""
    if variant in EASY_TOP_OPEN_VARIANTS:
        return STRUCTURE_TOP_OPEN
    if variant == "right-open":
        return STRUCTURE_RIGHT_OPEN
    return STRUCTURE_FOUR_SIDED


def bound_for(structure: str, dynamic: bool) -> str:
    """The paper bound governing ``structure`` (see module docstring)."""
    if structure == STRUCTURE_FOUR_SIDED:
        return BOUND_FOUR_SIDED
    return BOUND_DYNAMIC_EASY if dynamic else BOUND_STATIC_EASY


def search_term(
    structure: str, dynamic: bool, n: int, block_size: int, epsilon: float
) -> float:
    """The k-independent term of the bound, instantiated numerically."""
    if n <= 0:
        return 0.0
    b = max(2, block_size)
    if structure == STRUCTURE_FOUR_SIDED:
        return max(1.0, (n / b) ** epsilon)
    if dynamic:
        base = max(2.0, 2.0 * b**epsilon)
        return max(1.0, math.log(max(2.0, n / b), base))
    return max(1.0, math.log(n, b))


def per_result_term(
    structure: str, dynamic: bool, block_size: int, epsilon: float
) -> float:
    """The per-reported-point term: ``1/B`` (or ``1/B^(1-eps)`` dynamic)."""
    b = max(2, block_size)
    if structure != STRUCTURE_FOUR_SIDED and dynamic:
        return 1.0 / (b ** (1.0 - epsilon))
    return 1.0 / b


@dataclass(frozen=True)
class ScopePlan:
    """One structure instance the query will touch.

    ``shard`` is the shard id on the sharded backend, ``None`` on the
    monolithic one; ``n`` is the points resident in that instance and
    ``search_io`` its instantiated k-independent term.  ``level`` marks
    the leveled-update-path component the scope belongs to (``None`` for
    a base shard or the monolithic index): on the leveled path a query
    fans across the base shards *and* every level structure, and the plan
    carries one scope per instance so the search term stays honest.
    """

    shard: Optional[int]
    n: int
    search_io: float
    level: Optional[int] = None


@dataclass(frozen=True)
class QueryPlan:
    """The pre-execution plan ``engine.explain(request)`` returns."""

    backend: str
    variant: str
    structure: str
    bound: str
    block_size: int
    n: int
    epsilon: float
    dynamic: bool
    scopes: Tuple[ScopePlan, ...]
    shards_visited: int
    shards_pruned: int
    search_io: float
    per_result_io: float
    # Update-path facts (sharded backend): how writes reach the static
    # structures, the current level layout (records per level, level 0
    # being the memtable), and the amortized update bound instantiated
    # with the backend's actual B, n, growth and memtable capacity.
    update_path: Optional[str] = None
    level_layout: Tuple[Tuple[int, int], ...] = ()
    update_bound: Optional[str] = None
    update_io: Optional[float] = None
    # Topology facts (sharded backend): the router version the scopes were
    # planned against.  Scopes always come from the *live* router -- the
    # actual shard count is ``shards_visited + shards_pruned``, which can
    # differ from ``ServiceConfig.shard_count`` once online splits/merges
    # (or a degenerate cut computation) have moved the layout.
    topology_version: Optional[int] = None

    def predicted_io(self, k: int) -> float:
        """The bound instantiated at output size ``k`` (block transfers)."""
        return self.search_io + k * self.per_result_io

    @property
    def formula(self) -> str:
        """The instantiated bound, rendered for humans.

        Computed on demand: the hot query path builds a plan per request
        but only ``explain``-style consumers render the string.
        """
        b = self.block_size
        if self.structure == STRUCTURE_FOUR_SIDED:
            term = f"(n/{b})^{self.epsilon:g}"
        elif self.dynamic:
            term = f"log_(2*{b}^{self.epsilon:g})(n/{b})"
        else:
            term = f"log_{b}(n)"
        head = (
            f"sum over {len(self.scopes)} shards of {term}"
            if len(self.scopes) > 1
            else term
        )
        return (
            f"{head} + k*{self.per_result_io:.6g} = "
            f"{self.search_io:.3f} + k*{self.per_result_io:.6g}"
            f"  [B={b}, n={self.n}]"
        )


def build_plan(
    request: QueryRequest,
    *,
    backend: str,
    block_size: int,
    epsilon: float,
    dynamic: bool,
    scopes: Sequence[Tuple[Optional[int], int]],
    shards_pruned: int = 0,
    level_scopes: Sequence[Tuple[int, int]] = (),
    update_path: Optional[str] = None,
    level_layout: Sequence[Tuple[int, int]] = (),
    update_bound: Optional[str] = None,
    update_io: Optional[float] = None,
    topology_version: Optional[int] = None,
) -> QueryPlan:
    """Assemble a :class:`QueryPlan` from a backend's structural facts.

    ``scopes`` lists the structure instances that will serve the request
    as ``(shard_id_or_None, resident_points)`` pairs; ``level_scopes``
    lists the leveled components the query additionally fans across as
    ``(level, resident_points)`` pairs; ``dynamic`` says whether the
    easy-variant structures are Theorem 4's dynamic ones.
    """
    variant = request.variant
    structure = structure_for(variant)
    scope_plans = tuple(
        ScopePlan(
            shard=sid,
            n=n,
            search_io=search_term(structure, dynamic, n, block_size, epsilon),
        )
        for sid, n in scopes
    ) + tuple(
        ScopePlan(
            shard=None,
            n=n,
            search_io=search_term(structure, dynamic, n, block_size, epsilon),
            level=level,
        )
        for level, n in level_scopes
    )
    search_io = sum(scope.search_io for scope in scope_plans)
    per_result = per_result_term(structure, dynamic, block_size, epsilon)
    total_n = sum(scope.n for scope in scope_plans)
    return QueryPlan(
        backend=backend,
        variant=variant,
        structure=structure,
        bound=bound_for(structure, dynamic),
        block_size=block_size,
        n=total_n,
        epsilon=epsilon,
        dynamic=dynamic,
        scopes=scope_plans,
        shards_visited=len(scopes),
        shards_pruned=shards_pruned,
        search_io=search_io,
        per_result_io=per_result,
        update_path=update_path,
        level_layout=tuple(level_layout),
        update_bound=update_bound,
        update_io=update_io,
        topology_version=topology_version,
    )
