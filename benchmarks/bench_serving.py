"""Serving tier: coalescing I/O savings, shed-bounded tails, closed loop.

Claims (ISSUE 6 acceptance):

* on a Zipf-skewed multi-client read burst, **cross-caller coalescing
  reduces total block transfers** versus serving every gathered
  submission individually -- with the result cache off, so the saving is
  in the ledger, not cache luck -- and both modes return identical
  per-request answers;
* past saturation, the **shed backpressure policy keeps the served p99
  latency bounded** (at most the deep-queue blocking policy's p99) while
  accounting for every submission (``served + shed == submitted``);
* a **closed-loop run** with concurrent reader/writer clients reports
  throughput and p50/p95/p99 per cell, and the engine's **ledger
  partition** ``attributed + maintenance == total - build`` holds
  exactly in every cell.

Run under pytest (full sweep) or standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick]

Both modes persist the comparison table to ``BENCH_serving.json``
(schema v1, see :func:`repro.bench.reporting.write_json_report`); the
quick mode shrinks the burst but keeps every cell and assertion.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.bench.bench_serving import check, run_serving_sweep
from repro.bench.reporting import write_json_report

JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_serving.json"

QUICK = dict(n=2048, clients=6, requests_per_client=32, saturation_burst=192)
FULL = dict()


def run_sweeps(quick: bool = False):
    params = QUICK if quick else FULL
    table, summary = run_serving_sweep(**params)
    write_json_report(
        [table],
        str(JSON_PATH),
        meta={
            "experiment": "serving_coalescing_and_backpressure",
            "quick": quick,
            "summary": summary,
        },
    )
    return table, summary


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
import pytest  # noqa: E402


@pytest.fixture(scope="module")
def sweeps():
    return run_sweeps(quick=False)


def test_serving_coalesces_and_bounds_tails(sweeps, capsys):
    table, summary = sweeps
    with capsys.disabled():
        table.show()
        print(f"\nwrote {JSON_PATH.name}")
    check(summary)


def test_json_report_written(sweeps):
    import json

    payload = json.loads(JSON_PATH.read_text())
    assert payload["schema"] == 1
    assert (
        payload["meta"]["experiment"] == "serving_coalescing_and_backpressure"
    )
    assert payload["tables"]


# ----------------------------------------------------------------------
# CLI entry point (CI smoke run: --quick)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller burst and client count (same cells and assertions)",
    )
    args = parser.parse_args(argv)
    table, summary = run_sweeps(quick=args.quick)
    table.show()
    check(summary)
    print(f"\nok -- wrote {JSON_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
