"""Reduction of top-open range skyline to segment intersection (Section 2).

Each point ``p`` is converted into the horizontal segment
``sigma(p) = [x_p, x_{leftdom(p)}[ x y_p``; a top-open query becomes a
vertical-segment stabbing query over the resulting set ``Sigma(P)``, which
is *nesting* and *monotonic* (Lemma 2) -- the properties that make the
linear-I/O SABE construction of the PPB-tree possible.
"""

from repro.segments.segment import HorizontalSegment
from repro.segments.reduction import (
    compute_sigma,
    compute_sigma_emfile,
    leftdom_map,
)
from repro.segments.properties import is_monotonic, is_nesting

__all__ = [
    "HorizontalSegment",
    "compute_sigma",
    "compute_sigma_emfile",
    "leftdom_map",
    "is_nesting",
    "is_monotonic",
]
