"""Named locks with optional runtime order tracking.

The serving tier creates its locks through :func:`tracked_lock` /
:func:`tracked_condition` instead of ``threading.Lock()`` /
``threading.Condition()`` directly.  The wrappers carry a stable *name*
(the same name the static pass in :mod:`repro.analysis.locklint`
extracts), and when a :class:`LockOrderTracker` is installed -- via
``REPRO_SANITIZE=1`` or :func:`repro.analysis.sanitize.enable` -- every
acquisition is checked against the per-thread held set:

* acquiring ``B`` while holding ``A`` records the edge ``A -> B``; if
  that edge closes a cycle in the dynamically observed order graph, the
  acquisition raises :class:`~repro.analysis.sanitize.LockOrderError`
  *before* blocking (so the report arrives instead of the deadlock);
* when the tracker was built with the **static** lock-order graph, any
  observed edge missing from it raises too -- the dynamic behaviour must
  stay inside what ``tools/reprolint`` verified to be acyclic.

Acquisitions also bump the global sync epoch
(:func:`repro.analysis.sanitize.sync_point`), which is what lets the
ledger-ownership sanitizer accept lock-protected cross-thread charges.

With no tracker installed the wrappers cost one attribute load and a
``None`` check per acquisition, so production code keeps them on
permanently.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis import sanitize

__all__ = [
    "LockOrderTracker",
    "TrackedLock",
    "TrackedCondition",
    "ReadWriteGate",
    "tracked_lock",
    "tracked_condition",
    "tracked_rw_gate",
    "install_tracker",
    "tracker",
]


class LockOrderTracker:
    """Per-thread held-lock stacks plus a global observed order graph.

    ``allowed_edges`` (optional) is the static lock-order graph as
    ``(outer, inner)`` name pairs; when given, dynamically observed
    edges must be a subset of it.
    """

    def __init__(
        self, allowed_edges: Optional[Iterable[Tuple[str, str]]] = None
    ) -> None:
        self._graph_lock = threading.Lock()
        self._edges: Dict[str, Set[str]] = {}
        self._allowed: Optional[Set[Tuple[str, str]]] = (
            None if allowed_edges is None else set(allowed_edges)
        )
        self._local = threading.local()

    # -- per-thread state ---------------------------------------------
    def _held(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def held_locks(self) -> Tuple[str, ...]:
        """The lock names the calling thread currently holds, outermost
        first (introspection for tests)."""
        return tuple(self._held())

    def observed_edges(self) -> Set[Tuple[str, str]]:
        """Every ``(outer, inner)`` pair observed so far."""
        with self._graph_lock:
            return {(a, b) for a, inner in self._edges.items() for b in inner}

    # -- acquisition protocol -----------------------------------------
    def before_acquire(self, name: str) -> None:
        """Validate acquiring ``name`` given the caller's held set.

        Raises :class:`~repro.analysis.sanitize.LockOrderError` on an
        inversion (or an edge outside the static graph) *before* the
        caller blocks on the lock.
        """
        held = self._held()
        if not held:
            return
        with self._graph_lock:
            for outer in held:
                if outer == name:
                    raise sanitize.LockOrderError(
                        f"lock {name!r} acquired while already held by this "
                        "thread (self-deadlock on a non-reentrant lock, or "
                        "two same-ranked instances taken together)"
                    )
                if self._allowed is not None and (outer, name) not in self._allowed:
                    raise sanitize.LockOrderError(
                        f"observed acquisition order {outer!r} -> {name!r} is "
                        "not in the static lock-order graph -- run "
                        "tools/reprolint and annotate the call chain (repro: "
                        "calls(...)) or fix the ordering"
                    )
                if self._reaches(name, outer):
                    raise sanitize.LockOrderError(
                        f"lock-order inversion: acquiring {name!r} while "
                        f"holding {outer!r}, but the order "
                        f"{name!r} -> ... -> {outer!r} was already observed"
                    )
            for outer in held:
                self._edges.setdefault(outer, set()).add(name)

    def note_acquired(self, name: str) -> None:
        self._held().append(name)
        sanitize.sync_point()

    def note_released(self, name: str) -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index] == name:
                del held[index]
                return

    # -- internals ----------------------------------------------------
    def _reaches(self, source: str, target: str) -> bool:
        """Whether ``target`` is reachable from ``source`` in the
        observed graph (caller holds ``_graph_lock``)."""
        stack = [source]
        seen: Set[str] = set()
        while stack:
            node = stack.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._edges.get(node, ()))
        return False


# The installed tracker (None = lock-order sanitizing off).
_tracker: Optional[LockOrderTracker] = None


def install_tracker(instance: Optional[LockOrderTracker]) -> None:
    """Install (or remove, with ``None``) the global lock-order tracker."""
    global _tracker
    _tracker = instance


def tracker() -> Optional[LockOrderTracker]:
    """The currently installed tracker, if any."""
    return _tracker


class TrackedLock:
    """A ``threading.Lock`` wrapper carrying a stable name.

    Supports the mutex surface the serving tier uses (``with``,
    ``acquire``/``release``, ``locked``).  Acquisitions consult the
    installed :class:`LockOrderTracker` (when any) and bump the global
    sync epoch, making every lock acquisition a declared
    synchronization point for the ledger-ownership sanitizer.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        active = _tracker
        if active is not None:
            active.before_acquire(self.name)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            if active is not None:
                active.note_acquired(self.name)
            elif sanitize.ledger_checks:
                sanitize.sync_point()
        return acquired

    def release(self) -> None:
        active = _tracker
        if active is not None:
            active.note_released(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TrackedLock({self.name!r})"


class TrackedCondition:
    """A ``threading.Condition`` wrapper carrying a stable name.

    Exposes the condition surface the worker pool uses (``with``,
    ``wait``, ``notify``, ``notify_all``).  Entering the condition is
    tracked like a lock acquisition; waking from ``wait`` re-acquires
    the same underlying lock (no new order edge) but declares a sync
    point, since a wake-up is a cross-thread handoff.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._cond = threading.Condition()

    def __enter__(self) -> "TrackedCondition":
        active = _tracker
        if active is not None:
            active.before_acquire(self.name)
        self._cond.__enter__()
        if active is not None:
            active.note_acquired(self.name)
        elif sanitize.ledger_checks:
            sanitize.sync_point()
        return self

    def __exit__(self, *exc_info: object) -> None:
        active = _tracker
        if active is not None:
            active.note_released(self.name)
        self._cond.__exit__(None, None, None)

    def wait(self, timeout: Optional[float] = None) -> bool:
        notified = self._cond.wait(timeout)
        if _tracker is not None or sanitize.ledger_checks:
            sanitize.sync_point()
        return notified

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TrackedCondition({self.name!r})"


class _GateSide:
    """Context manager for one side of a :class:`ReadWriteGate`."""

    __slots__ = ("_gate", "_write")

    def __init__(self, gate: "ReadWriteGate", write: bool) -> None:
        self._gate = gate
        self._write = write

    def __enter__(self) -> "_GateSide":
        if self._write:
            self._gate._enter_write()
        else:
            self._gate._enter_read()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._write:
            self._gate._exit_write()
        else:
            self._gate._exit_read()


class ReadWriteGate:
    """A write-preferring read/write gate on one :class:`TrackedCondition`.

    ``with gate.read():`` admits any number of concurrent readers while
    no writer is active or waiting; ``with gate.write():`` waits for the
    gate to empty and then excludes everything.  The underlying condition
    is held only while the reader count or writer flag flips -- never
    across the guarded body -- so both sides acquire and release the same
    single name: the gate adds no lock-order edges of its own, and every
    transition is a tracked acquisition (hence a declared sync point for
    the ledger-ownership sanitizer).  Write preference (readers also wait
    while writers are *queued*) keeps a steady read stream from starving
    the writer side.

    The static pass (:mod:`repro.analysis.locklint`) treats
    ``with gate.read():`` / ``with gate.write():`` as acquisitions of the
    gate's name, so ``# repro: guards(<attr>)`` discipline and static
    graph edges work exactly as for a plain :func:`tracked_lock`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._cond = TrackedCondition(name)
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def read(self) -> _GateSide:
        """Reader-side context manager (shared with other readers)."""
        return _GateSide(self, write=False)

    def write(self) -> _GateSide:
        """Writer-side context manager (exclusive)."""
        return _GateSide(self, write=True)

    @property
    def readers(self) -> int:
        """Readers currently inside the gate (introspection for tests)."""
        return self._readers

    # -- transitions (the condition is held only inside these) ---------
    def _enter_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def _exit_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def _enter_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def _exit_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ReadWriteGate({self.name!r})"


def tracked_lock(name: str) -> TrackedLock:
    """A named mutex; the name is what reprolint's static graph and the
    runtime tracker report."""
    return TrackedLock(name)


def tracked_condition(name: str) -> TrackedCondition:
    """A named condition variable (see :func:`tracked_lock`)."""
    return TrackedCondition(name)


def tracked_rw_gate(name: str) -> ReadWriteGate:
    """A named read/write gate (see :class:`ReadWriteGate`)."""
    return ReadWriteGate(name)
