"""Columnar (struct-of-arrays) point kernels for the query hot path.

The ledger already charges the paper's block-transfer costs; this module
attacks the orthogonal axis -- *seconds*.  A :class:`PointColumns` holds
a point set as parallel x/y/ident arrays (numpy ``float64`` columns when
numpy is importable, stdlib ``array('d')`` otherwise), and the kernels
below replace the per-object hot loops of the merge path:

* :func:`merge_skyline_sources` -- the decreasing-x running-max-y sweep
  of :func:`repro.service.merge.merge_component_skylines`, run as one
  argsort plus one vectorized prefix-max scan over the union's columns
  instead of a lambda-keyed sort of ``Point`` objects;
* :func:`sweep_concatenated` -- the same sweep specialised to inputs
  already in increasing-x order (the x-disjoint per-shard merge), which
  needs no sort at all: one suffix-max scan;
* :func:`filter_rect` / :func:`x_window` -- vectorized in-rectangle
  filtering over x-sorted columns (bisect the x-window, mask the rest).

``Point`` objects are materialised only at the response boundary: a
``PointColumns`` built from an existing point list keeps the object
references, so kernels return the *original* objects by index -- results
are identical to the object path's, not merely equal.

Everything here is pure in-memory compute over already-resident data.
No kernel touches a :class:`~repro.em.disk.DiskModel`, a
:class:`~repro.em.storage.StorageManager` or an
:class:`~repro.em.counters.IOStats` ledger, so there is nothing to
charge and nothing for ``tools/reprolint``'s uncharged-I/O pass to flag
-- the convention for new fast paths is that they either charge a ledger
or stay off the block-transfer APIs entirely (see DESIGN.md, "Columnar
kernels and the charging boundary").

numpy stays an *optional* extra (see ``pyproject.toml``): the pure-python
``array``-module fallback is selected automatically when numpy is not
importable, or forced with ``REPRO_NO_NUMPY=1`` (the CI leg that proves
tier-1 passes without numpy sets it explicitly).
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left, bisect_right
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.core.point import Point

_np: Optional[Any]
if os.environ.get("REPRO_NO_NUMPY"):
    _np = None
else:  # pragma: no branch
    try:
        import numpy as _np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
        _np = None

#: Whether the numpy backend is active (``False`` under ``REPRO_NO_NUMPY=1``
#: or when numpy is simply not installed).
HAVE_NUMPY: bool = _np is not None

#: Below this many candidates the object-path loop beats kernel setup
#: overhead (array extraction, numpy dispatch), so the kernels fall back
#: to the plain scan.  Answers are identical either way.
SMALL_MERGE_CUTOFF = 48


def backend_name() -> str:
    """The active column backend: ``"numpy"`` or ``"python-array"``."""
    return "numpy" if HAVE_NUMPY else "python-array"


class PointColumns:
    """An immutable struct-of-arrays view of a point sequence.

    ``xs``/``ys`` are parallel coordinate columns; ``idents`` the parallel
    payload column.  When built :meth:`from_points`, the original objects
    are retained so :meth:`point_at` returns *the same* ``Point``
    instances the object path would -- materialisation is a list index,
    not an object construction.
    """

    __slots__ = ("xs", "ys", "idents", "_points")

    def __init__(
        self,
        xs: Any,
        ys: Any,
        idents: Sequence[Optional[int]],
        points: Optional[Sequence[Point]] = None,
    ) -> None:
        self.xs = xs
        self.ys = ys
        self.idents = idents
        self._points = points

    @classmethod
    def from_points(cls, points: Sequence[Point]) -> "PointColumns":
        """Columnise ``points`` (one attribute pass; objects retained)."""
        n = len(points)
        if HAVE_NUMPY:
            assert _np is not None
            xs = _np.fromiter((p.x for p in points), dtype=_np.float64, count=n)
            ys = _np.fromiter((p.y for p in points), dtype=_np.float64, count=n)
        else:
            xs = array("d", (p.x for p in points))
            ys = array("d", (p.y for p in points))
        idents = [p.ident for p in points]
        return cls(xs, ys, idents, points)

    def __len__(self) -> int:
        return len(self.xs)

    def point_at(self, index: int) -> Point:
        """The ``index``-th point: the retained original when available,
        a freshly materialised ``Point`` otherwise."""
        if self._points is not None:
            return self._points[index]
        return Point(float(self.xs[index]), float(self.ys[index]), self.idents[index])

    def take(self, indices: Sequence[int]) -> List[Point]:
        """Materialise the given row indices, in the given order."""
        pts = self._points
        if pts is not None:
            return [pts[i] for i in indices]
        return [self.point_at(i) for i in indices]

    def to_points(self) -> List[Point]:
        """The whole column set as a point list."""
        return self.take(range(len(self)))

    # -- x-sorted helpers ----------------------------------------------
    def bisect_x_left(self, x: float) -> int:
        """``bisect_left`` on the (x-sorted) x column."""
        if HAVE_NUMPY:
            assert _np is not None
            return int(_np.searchsorted(self.xs, x, side="left"))
        return bisect_left(self.xs, x)

    def bisect_x_right(self, x: float) -> int:
        """``bisect_right`` on the (x-sorted) x column."""
        if HAVE_NUMPY:
            assert _np is not None
            return int(_np.searchsorted(self.xs, x, side="right"))
        return bisect_right(self.xs, x)


#: What the merge kernels accept per source: a plain point sequence or an
#: already-columnised set.
ColumnsLike = Union[PointColumns, Sequence[Point]]


def _source_points(source: ColumnsLike) -> Sequence[Point]:
    if isinstance(source, PointColumns):
        return source.to_points()
    return source


def _object_sweep(sources: Sequence[ColumnsLike]) -> List[Point]:
    """The reference object-path sweep (also the small-input fast path)."""
    candidates = [p for source in sources for p in _source_points(source)]
    candidates.sort(key=lambda p: (-p.x, -p.y))
    best_y = float("-inf")
    kept: List[Point] = []
    for point in candidates:
        if point.y > best_y:
            kept.append(point)
            best_y = point.y
    kept.reverse()
    return kept


def merge_skyline_sources(sources: Sequence[ColumnsLike]) -> List[Point]:
    """Skyline of the union of ``sources`` (arbitrary, overlapping
    x-ranges), sorted by increasing x.

    The vectorized form of the decreasing-x running-max-y sweep: one
    argsort of the concatenated columns by ``(x, y)`` (reversed, so the
    scan runs in decreasing x with decreasing-y tie order), one prefix-max
    over the permuted y column, one boolean gather.  Identical answers to
    the object path by construction; only seconds move.
    """
    total = sum(len(s) for s in sources)
    if total < SMALL_MERGE_CUTOFF or not HAVE_NUMPY:
        return _object_sweep(sources)
    assert _np is not None
    xs = _np.empty(total, dtype=_np.float64)
    ys = _np.empty(total, dtype=_np.float64)
    all_points: List[Point] = []
    offset = 0
    for source in sources:
        n = len(source)
        if n == 0:
            continue
        if isinstance(source, PointColumns):
            xs[offset:offset + n] = source.xs
            ys[offset:offset + n] = source.ys
            pts = source._points
            if pts is not None:
                all_points.extend(pts)
            else:
                all_points.extend(source.to_points())
        else:
            xs[offset:offset + n] = _np.fromiter(
                (p.x for p in source), dtype=_np.float64, count=n
            )
            ys[offset:offset + n] = _np.fromiter(
                (p.y for p in source), dtype=_np.float64, count=n
            )
            all_points.extend(source)
        offset += n
    # Ascending (x, y) reversed == descending x with descending-y ties:
    # exactly the object path's sort key (-x, -y).
    order = _np.lexsort((ys, xs))[::-1]
    y_sorted = ys[order]
    running = _np.maximum.accumulate(y_sorted)
    keep = _np.empty(total, dtype=bool)
    keep[0] = True
    # Strict survivor rule: y must exceed the max among strictly-larger x
    # (and, on x-ties, among same-x candidates already seen with larger y
    # -- which dominate identically, so dropping them matches the object
    # path's behaviour exactly).
    keep[1:] = y_sorted[1:] > running[:-1]
    kept_desc = order[keep]
    return [all_points[i] for i in kept_desc[::-1].tolist()]


def sweep_concatenated(parts: Sequence[Sequence[Point]]) -> List[Point]:
    """Skyline sweep over parts whose concatenation is increasing-x sorted
    (the x-disjoint per-shard merge): no sort, one suffix-max scan.

    A candidate survives iff its y strictly exceeds the maximum y of
    every candidate to its right -- the same strict rule as
    :func:`merge_skyline_sources`, exploiting that shard results arrive
    x-sorted and x-disjoint in shard order.
    """
    total = sum(len(part) for part in parts)
    if total == 0:
        return []
    if total < SMALL_MERGE_CUTOFF or not HAVE_NUMPY:
        best_y = float("-inf")
        kept_rev: List[Point] = []
        for part in reversed(parts):
            for point in reversed(part):
                if point.y > best_y:
                    kept_rev.append(point)
                    best_y = point.y
        kept_rev.reverse()
        return kept_rev
    assert _np is not None
    ys = _np.empty(total, dtype=_np.float64)
    all_points: List[Point] = []
    offset = 0
    for part in parts:
        n = len(part)
        if n == 0:
            continue
        ys[offset:offset + n] = _np.fromiter(
            (p.y for p in part), dtype=_np.float64, count=n
        )
        all_points.extend(part)
        offset += n
    suffix = _np.maximum.accumulate(ys[::-1])[::-1]
    keep = _np.empty(total, dtype=bool)
    keep[-1] = True
    keep[:-1] = ys[:-1] > suffix[1:]
    return [all_points[i] for i in _np.nonzero(keep)[0].tolist()]


def x_window(columns: PointColumns, x_lo: float, x_hi: float) -> Tuple[int, int]:
    """Index range ``[lo, hi)`` of points with ``x_lo <= x <= x_hi`` in an
    x-sorted column set (one bisect per side, no scan)."""
    return columns.bisect_x_left(x_lo), columns.bisect_x_right(x_hi)


def filter_rect(
    columns: PointColumns,
    x_lo: float,
    x_hi: float,
    y_lo: float,
    y_hi: float,
) -> List[Point]:
    """Points of an x-sorted column set inside the closed rectangle,
    in increasing-x order -- the vectorized in-rectangle filter."""
    lo, hi = x_window(columns, x_lo, x_hi)
    if lo >= hi:
        return []
    if HAVE_NUMPY and hi - lo >= SMALL_MERGE_CUTOFF:
        assert _np is not None
        window_ys = columns.ys[lo:hi]
        mask = (window_ys >= y_lo) & (window_ys <= y_hi)
        indices = (_np.nonzero(mask)[0] + lo).tolist()
        return columns.take(indices)
    ys = columns.ys
    return columns.take(
        [i for i in range(lo, hi) if y_lo <= ys[i] <= y_hi]
    )


def sort_points_by_x(points: List[Point]) -> List[Point]:
    """Sort a point list by increasing x via a columnar argsort.

    Drop-in replacement for ``points.sort(key=lambda p: p.x)`` at result
    assembly boundaries (static top-open candidate sets, BBS output);
    returns a new list and leaves the input untouched.
    """
    n = len(points)
    if n < SMALL_MERGE_CUTOFF or not HAVE_NUMPY:
        return sorted(points, key=lambda p: p.x)
    assert _np is not None
    xs = _np.fromiter((p.x for p in points), dtype=_np.float64, count=n)
    return [points[i] for i in _np.argsort(xs, kind="stable").tolist()]
