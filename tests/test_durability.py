"""Tests for the durability subsystem (repro.service.durability).

The acceptance property is *prefix consistency*: crash a durable service
after any durable WAL-record prefix, and :meth:`SkylineService.open`
restores exactly the live point set the durable prefix describes -- and its
query answers match the naive scan baseline over that point set.  The
crash adversary is :class:`repro.service.durability.CrashSimulator`, which
enumerates every prefix, including kills in the middle of a group-committed
block.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FourSidedQuery, Point, RangeQuery, TopOpenQuery
from repro.baselines.naive import NaiveScanSkyline
from repro.em import EMConfig, StorageManager
from repro.service import (
    CrashSimulator,
    DurableStore,
    ServiceConfig,
    SkylineService,
    WriteAheadLog,
    crashed_copy,
)
from repro.service.durability import (
    OP_COMPACT,
    OP_DELETE,
    SnapshotManifest,
    load_snapshot,
    write_snapshot_blocks,
)


def canon(points):
    return sorted((p.x, p.y, p.ident) for p in points)


def canon_xy(points):
    return sorted((p.x, p.y) for p in points)


def seed_points(n, seed=0):
    """A small general-position point set with deterministic idents."""
    rng = random.Random(seed)
    xs = rng.sample(range(10 * n), n)
    ys = rng.sample(range(10 * n), n)
    return [Point(float(x), float(y), i) for i, (x, y) in enumerate(zip(xs, ys))]


def naive_answers(points, queries):
    baseline = NaiveScanSkyline(
        StorageManager(EMConfig(block_size=16, memory_blocks=16)), points
    )
    return [canon_xy(baseline.query(query)) for query in queries]


def drive(service, ops, rng):
    """Apply a random op mix; returns the expected live set per WAL record.

    ``expected[k]`` is the canonical live set once the first ``k`` WAL
    records are applied.  One service call can emit several records (an
    insert/delete record followed by an auto-compaction checkpoint); the
    *first* record of a call carries the state change and the rest are
    compaction checkpoints that leave the live set untouched, so gaps are
    filled from the next recorded state.
    """
    live = list(service.live_points())
    expected = {0: canon(live)}

    def note():
        expected[service.wal.durable_count + service.wal.pending] = canon(live)

    for i in range(ops):
        roll = rng.random()
        if roll < 0.45:
            point = Point(100_000.0 + i * 1.25, 200_000.0 + i * 1.5, 50_000 + i)
            service.insert(point)
            live.append(point)
        elif roll < 0.75 and live:
            victim = live.pop(rng.randrange(len(live)))
            assert service.delete(victim)
        elif roll < 0.85:
            service.compact()
        elif roll < 0.9:
            # A no-op on the legacy path; on the leveled path it logs a
            # drain checkpoint and may anchor a level-aware snapshot.
            service.drain()
        else:
            # Queries must not disturb durability state at all.
            before = (service.wal.durable_count, service.wal.pending)
            service.query(TopOpenQuery(0.0, 500_000.0, 0.0))
            assert (service.wal.durable_count, service.wal.pending) == before
        note()
    known = sorted(expected)
    total = service.wal.durable_count + service.wal.pending
    for k in range(total + 1):
        if k not in expected:
            expected[k] = expected[min(j for j in known if j > k)]
    return expected


# ----------------------------------------------------------------------
# Acceptance: crash at every WAL prefix, recover the exact durable state
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    shard_count=st.integers(min_value=1, max_value=3),
    group_commit=st.sampled_from([1, 3]),
    snapshot_every=st.sampled_from([1, 2]),
    update_path=st.sampled_from(["leveled", "threshold-compact"]),
)
def test_crash_recovery_every_prefix(
    seed, shard_count, group_commit, snapshot_every, update_path
):
    rng = random.Random(seed)
    points = seed_points(30, seed=seed)
    service = SkylineService(
        points,
        ServiceConfig(
            shard_count=shard_count,
            block_size=8,
            memory_blocks=8,
            delta_threshold=6,
            durability=True,
            wal_group_commit=group_commit,
            snapshot_every_compactions=snapshot_every,
            update_path=update_path,
        ),
    )
    expected = drive(service, ops=18, rng=rng)
    queries = [
        RangeQuery(),
        TopOpenQuery(50.0, 400_000.0, 10.0),
        FourSidedQuery(0.0, 250_000.0, 0.0, 250_000.0),
    ]
    for prefix, crashed in CrashSimulator(service.store):
        recovered = SkylineService.open(crashed)
        assert canon(recovered.live_points()) == expected[prefix], (
            f"live set diverges after crash at prefix {prefix}"
        )
        assert recovered.recovery is not None
        assert recovered.recovery["replay_io"] >= 0
        got = recovered.query_many(queries, use_cache=False)
        want = naive_answers(recovered.live_points(), queries)
        assert [canon_xy(r) for r in got] == want, (
            f"answers diverge after crash at prefix {prefix}"
        )


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_crash_during_topology_changes_restores_exact_topology(seed):
    """Crash-at-every-prefix through a stream of interleaved updates,
    splits, merges and folds: recovery restores not just the live set but
    the *exact* post-change topology (the manifest's recorded cuts plus
    the replayed OP_SPLIT/OP_MERGE/OP_FOLD suffix) at every WAL record
    boundary."""
    rng = random.Random(seed)
    points = seed_points(40, seed=seed)
    service = SkylineService(
        points,
        ServiceConfig(
            shard_count=2,
            block_size=8,
            memory_blocks=8,
            delta_threshold=5,
            level_growth=2,
            merge_step_blocks=2,
            durability=True,
            wal_group_commit=1,
        ),
    )
    live = list(points)
    expected = {
        service.wal.durable_count: (canon(live), tuple(service.router.cuts))
    }
    for i in range(22):
        roll = rng.random()
        if roll < 0.45:
            point = Point(300_000.0 + i * 1.25, 300_000.0 + i * 1.5, 5_000 + i)
            service.insert(point)
            live.append(point)
        elif roll < 0.6 and live:
            victim = live.pop(rng.randrange(len(live)))
            assert service.delete(victim)
        elif roll < 0.75:
            service.split_shard(rng.randrange(len(service.shards)))
        elif roll < 0.85 and len(service.shards) > 1:
            service.merge_shards(rng.randrange(len(service.shards) - 1))
        elif roll < 0.95:
            service.fold_shard(rng.randrange(len(service.shards)))
        else:
            service.drain()
        expected[service.wal.durable_count + service.wal.pending] = (
            canon(live),
            tuple(service.router.cuts),
        )
    total = service.wal.durable_count + service.wal.pending
    known = sorted(expected)
    for k in range(total + 1):
        if k not in expected:
            expected[k] = expected[min(j for j in known if j > k)]
    for prefix, crashed in CrashSimulator(service.store):
        recovered = SkylineService.open(crashed)
        want_live, want_cuts = expected[prefix]
        assert canon(recovered.live_points()) == want_live, (
            f"live set diverges after crash at prefix {prefix}"
        )
        assert tuple(recovered.router.cuts) == want_cuts, (
            f"topology diverges after crash at prefix {prefix}: "
            f"{recovered.router.cuts} != {list(want_cuts)}"
        )
        probe = TopOpenQuery(0.0, 500_000.0, 0.0)
        assert canon_xy(recovered.query(probe)) == canon_xy(
            NaiveScanSkyline(
                StorageManager(EMConfig(block_size=16, memory_blocks=16)),
                recovered.live_points(),
            ).query(probe)
        )


def test_clean_shutdown_recovers_exact_state():
    """Opening the untouched store (no crash) restores the full state."""
    points = seed_points(60, seed=5)
    service = SkylineService(
        points,
        ServiceConfig(
            shard_count=4,
            block_size=16,
            memory_blocks=8,
            delta_threshold=12,
            durability=True,
            wal_group_commit=1,
        ),
    )
    rng = random.Random(3)
    drive(service, ops=25, rng=rng)
    service.close()  # clean shutdown forces the tail durable
    recovered = SkylineService.open(service.store)
    assert canon(recovered.live_points()) == canon(service.live_points())
    assert canon_xy(recovered.skyline()) == canon_xy(service.skyline())


# ----------------------------------------------------------------------
# Durability off: identical answers, zero durability I/O
# ----------------------------------------------------------------------
def test_durability_off_equivalence_and_zero_wal_io():
    points = seed_points(80, seed=9)
    plain = SkylineService(
        points, ServiceConfig(shard_count=3, block_size=16, memory_blocks=8,
                              delta_threshold=10)
    )
    durable = SkylineService(
        points, ServiceConfig(shard_count=3, block_size=16, memory_blocks=8,
                              delta_threshold=10, durability=True)
    )
    rng_a, rng_b = random.Random(4), random.Random(4)
    for service, rng in ((plain, rng_a), (durable, rng_b)):
        for i in range(20):
            service.insert(Point(90_000.0 + i * 2.5, 90_000.0 + i * 3.5, 7_000 + i))
            if i % 4 == 0:
                assert service.delete(points[rng.randrange(len(points))])
    queries = [RangeQuery(), TopOpenQuery(10.0, 500_000.0, 5.0)]
    assert [canon_xy(r) for r in plain.query_many(queries, use_cache=False)] == [
        canon_xy(r) for r in durable.query_many(queries, use_cache=False)
    ]
    # The in-memory service charges no durability I/O anywhere...
    assert plain.store is None and plain.wal is None
    assert plain.durability_io() == 0
    assert "durability_detail" not in plain.describe()
    # ...while the durable one pays real block writes for WAL + snapshots,
    # on a ledger separate from the query path.
    assert durable.durability_io() > 0
    assert durable.io_total() == durable.query_io_total() + durable.durability_io()


# ----------------------------------------------------------------------
# WAL mechanics
# ----------------------------------------------------------------------
def test_wal_group_commit_block_math():
    store = DurableStore(EMConfig(block_size=4, memory_blocks=4))
    wal = WriteAheadLog(store, group_commit_size=6)
    for i in range(5):
        wal.log_insert(Point(float(i), float(i + 100), i))
    # Tail below the group size: acknowledged but not durable, no writes.
    assert wal.pending == 5 and wal.durable_count == 0
    assert store.stats.writes == 0
    wal.log_insert(Point(5.0, 105.0, 5))
    # Sixth record triggers the group commit: 6 records in blocks of B=4.
    assert wal.pending == 0 and wal.durable_count == 6
    assert store.stats.writes == 2
    assert store.wal_blocks == [(store.wal_blocks[0][0], 4), (store.wal_blocks[1][0], 2)]
    # LSNs are positional and contiguous across the flush boundary.
    records = list(store.read_wal_suffix(0))
    assert [r.lsn for r in records] == [1, 2, 3, 4, 5, 6]
    # A compact record forces the tail durable immediately.
    wal.log_insert(Point(6.0, 106.0, 6))
    assert wal.pending == 1
    checkpoint = wal.log_compact()
    assert wal.pending == 0 and wal.durable_count == 8
    assert checkpoint.op == OP_COMPACT and checkpoint.lsn == 8
    with pytest.raises(ValueError):
        checkpoint.point()


def test_crashed_copy_truncates_mid_block():
    store = DurableStore(EMConfig(block_size=4, memory_blocks=4))
    wal = WriteAheadLog(store, group_commit_size=8)
    for i in range(8):
        wal.log_insert(Point(float(i), float(i + 50), i))
    assert store.wal_durable == 8 and store.wal_block_count() == 2
    # Kill inside the first block: only 3 of its 4 records were durable.
    crashed = crashed_copy(store, 3)
    assert crashed.wal_durable == 3
    assert [r.lsn for r in crashed.read_wal_suffix(0)] == [1, 2, 3]
    # The original store is untouched (every prefix is independent).
    assert store.wal_durable == 8
    assert [r.lsn for r in store.read_wal_suffix(0)] == list(range(1, 9))
    with pytest.raises(ValueError):
        crashed_copy(store, 9)


def test_manifests_dropped_beyond_kill_point():
    """Legacy-path regression: snapshot cadence at auto compactions."""
    points = seed_points(40, seed=1)
    service = SkylineService(
        points,
        ServiceConfig(shard_count=2, block_size=8, memory_blocks=8,
                      delta_threshold=4, durability=True, wal_group_commit=1,
                      update_path="threshold-compact"),
    )
    for i in range(12):
        service.insert(Point(70_000.0 + i * 1.5, 80_000.0 + i * 2.5, 9_000 + i))
    assert service.compactions >= 2
    manifests = service.store.manifests
    # Birth snapshot plus one per compaction (cadence 1).
    assert len(manifests) == 1 + service.compactions
    # Crash before the first compaction checkpoint: only the birth
    # snapshot (installed_lsn == 0) survives, and recovery replays the
    # whole surviving suffix from LSN 0.
    first_checkpoint = manifests[1].installed_lsn
    crashed = crashed_copy(service.store, first_checkpoint - 1)
    assert [m.installed_lsn for m in crashed.manifests] == [0]
    # Dropped manifests' blocks and dropped WAL blocks are freed: every
    # allocated block is reachable from a surviving directory entry.
    assert crashed.blocks_in_use() == (
        crashed.snapshot_block_count() + crashed.wal_block_count()
    )
    assert crashed.blocks_in_use() < service.store.blocks_in_use()
    recovered = SkylineService.open(crashed)
    assert recovered.recovery["folded_lsn"] == 0
    assert recovered.recovery["replayed_records"] == first_checkpoint - 1


def test_reclaim_frees_superseded_history():
    """reclaim() keeps the store bounded: superseded snapshots and the
    folded WAL prefix are freed, recovery still works, and the crash
    simulator refuses only the reclaimed (unreplayable) kill points."""
    service = SkylineService(
        seed_points(40, seed=13),
        ServiceConfig(shard_count=2, block_size=8, memory_blocks=8,
                      delta_threshold=5, durability=True, wal_group_commit=1,
                      update_path="threshold-compact"),
    )
    for i in range(20):
        service.insert(Point(60_000.0 + i * 1.75, 50_000.0 + i * 2.75, 6_000 + i))
    assert len(service.store.manifests) >= 3
    before_blocks = service.store.blocks_in_use()
    freed = service.reclaim()
    assert freed["snapshot_blocks_freed"] > 0
    assert freed["wal_blocks_freed"] > 0
    assert service.store.blocks_in_use() < before_blocks
    assert len(service.store.manifests) == 1
    # Reclaiming again frees nothing (idempotent on quiescent history).
    assert service.reclaim() == {
        "snapshot_blocks_freed": 0, "wal_blocks_freed": 0,
    }
    # Recovery from the retained manifest + suffix is unaffected.
    service.close()
    recovered = SkylineService.open(service.store)
    assert canon(recovered.live_points()) == canon(service.live_points())
    # Crash simulation still covers every retained prefix...
    base = service.store.wal_base
    prefixes = [p for p, _ in CrashSimulator(service.store)]
    assert prefixes == list(range(base, service.store.wal_durable + 1))
    # ...and refuses reclaimed history instead of mis-recovering it.
    if base > 0:
        with pytest.raises(ValueError, match="reclaimed"):
            crashed_copy(service.store, base - 1)
    # A non-durable service reclaims nothing, trivially.
    plain = SkylineService(seed_points(10, seed=14), shard_count=1)
    assert plain.reclaim() == {
        "snapshot_blocks_freed": 0, "wal_blocks_freed": 0,
    }


def test_recovery_counters_split_snapshot_load_from_replay():
    """The cadence trade-off's two terms are reported separately."""
    service = SkylineService(
        seed_points(64, seed=15),
        ServiceConfig(shard_count=2, block_size=8, memory_blocks=8,
                      delta_threshold=1_000, durability=True,
                      wal_group_commit=1),
    )
    for i in range(5):
        service.insert(Point(70_000.0 + i * 1.5, 70_000.0 + i * 2.5, 5_000 + i))
    recovered = SkylineService.open(service.store)
    recovery = recovered.recovery
    # Baseline snapshot of 64 points in B=8 blocks: 8 point blocks + the
    # manifest read; the 5-record suffix is 5 one-record block reads; the
    # index rebuild from the loaded points is shard-machine work.
    assert recovery["snapshot_load_io"] == 9
    assert recovery["replay_io"] == 5
    assert recovery["replayed_records"] == 5
    assert recovery["rebuild_io"] > 0
    assert recovery["rebuild_io"] == recovered.query_io_total()
    assert recovery["recovery_io"] == 14 + recovery["rebuild_io"]


def test_snapshot_cadence_bounds_replay():
    """snapshot_every_compactions trades snapshot writes for replay length."""

    def build(snapshot_every):
        service = SkylineService(
            seed_points(40, seed=2),
            ServiceConfig(shard_count=2, block_size=8, memory_blocks=8,
                          delta_threshold=5, durability=True,
                          wal_group_commit=1,
                          update_path="threshold-compact",
                          snapshot_every_compactions=snapshot_every),
        )
        for i in range(20):
            service.insert(Point(60_000.0 + i * 1.25, 50_000.0 + i * 2.25, 8_000 + i))
        return service

    frequent, sparse = build(1), build(3)
    assert frequent.compactions == sparse.compactions >= 3
    assert len(frequent.store.manifests) > len(sparse.store.manifests)
    # Sparse snapshotting leaves a longer WAL suffix to replay at recovery.
    replay_frequent = SkylineService.open(frequent.store).recovery
    replay_sparse = SkylineService.open(sparse.store).recovery
    assert replay_sparse["replayed_records"] >= replay_frequent["replayed_records"]
    assert replay_sparse["folded_lsn"] <= replay_frequent["folded_lsn"]


def test_snapshot_roundtrip_and_block_accounting():
    store = DurableStore(EMConfig(block_size=4, memory_blocks=4))
    shards = [
        [Point(float(i), float(i + 10), i) for i in range(6)],
        [Point(float(i + 100), float(i + 110), i + 100) for i in range(3)],
    ]
    writes_before = store.stats.writes
    blocks, total = write_snapshot_blocks(store, shards)
    # ceil(6/4) + ceil(3/4) = 3 point blocks, each one charged write.
    assert store.stats.writes - writes_before == 3
    assert total == 9 and [len(b) for b in blocks] == [2, 1]
    manifest = store.install_manifest(
        SnapshotManifest(generation=1, folded_lsn=0, installed_lsn=0,
                         cuts=(50.0,), shard_blocks=blocks, point_count=total)
    )
    assert manifest.block_count == 4  # 3 point blocks + the manifest block
    reads_before = store.stats.reads
    loaded = load_snapshot(store, manifest)
    assert canon(loaded) == canon([p for shard in shards for p in shard])
    assert store.stats.reads - reads_before == 4


def test_open_virgin_store_and_recovery_counters_in_describe():
    store = DurableStore(EMConfig(block_size=8, memory_blocks=8))
    service = SkylineService.open(store)
    assert service.live_points() == []
    # Nothing was replayed: the baseline-snapshot write the constructor
    # performs is birth cost, not replay.
    assert service.recovery["replayed_records"] == 0
    assert service.recovery["replay_io"] == 0
    service.insert(Point(1.0, 2.0, 0))
    assert service.close() == 1
    recovered = SkylineService.open(service.store)
    detail = recovered.describe()["durability_detail"]
    assert detail["recovery"]["replayed_records"] == 1
    assert detail["recovery"]["replay_io"] > 0
    assert canon(recovered.live_points()) == [(1.0, 2.0, 0)]


def test_used_store_rejected_outside_open():
    """A store already holding durable state must be recovered via open():
    silently layering fresh points on top would make recovery resurrect
    the old state and lose the new points entirely."""
    original = ServiceConfig(shard_count=1, block_size=8, memory_blocks=8,
                             durability=True, wal_group_commit=1)
    first = SkylineService(seed_points(10, seed=11), original)
    with pytest.raises(ValueError, match="SkylineService.open"):
        SkylineService(
            seed_points(10, seed=12), store=first.store,
            shard_count=4, wal_group_commit=64,
        )
    # The rejected call must not have touched the store: the recorded
    # config (and thus the durability guarantee open() recovers with)
    # is still the owning service's.
    assert first.store.service_config == original
    recovered = SkylineService.open(first.store)
    assert recovered.config.wal_group_commit == 1
    assert canon(recovered.live_points()) == canon(first.live_points())


def test_replayed_wal_records_round_trip_ops():
    """WAL records carry exact victims: replay deletes the logged ident."""
    twins_base = seed_points(20, seed=6)
    service = SkylineService(
        twins_base,
        ServiceConfig(shard_count=2, block_size=8, memory_blocks=8,
                      delta_threshold=100, durability=True, wal_group_commit=1),
    )
    victim = twins_base[7]
    assert service.delete(Point(victim.x, victim.y, victim.ident))
    records = list(service.store.read_wal_suffix(0))
    assert [r.op for r in records] == [OP_DELETE]
    assert records[0].ident == victim.ident
    recovered = SkylineService.open(service.store)
    assert canon(recovered.live_points()) == canon(
        [p for p in twins_base if p.ident != victim.ident]
    )
