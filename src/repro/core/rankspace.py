"""Rank-space reduction (Section 3, Theorem 2 / Corollary 1).

The rank-space structure assumes the universe is ``[O(n)]^2``.  An arbitrary
point set is mapped there by replacing each coordinate with its rank; query
coordinates are mapped by predecessor search.  The external structure of
Corollary 1 performs that predecessor search in ``O(log log_B U)`` I/Os --
we model it with a van Emde Boas style cost formula on top of a plain sorted
array (the I/O charge is what matters; see DESIGN.md §2).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.point import Point
from repro.core.queries import RangeQuery


@dataclass
class RankSpaceMap:
    """A bidirectional mapping between original coordinates and their ranks."""

    xs: List[float]
    ys: List[float]

    @classmethod
    def build(cls, points: Iterable[Point]) -> "RankSpaceMap":
        pts = list(points)
        return cls(xs=sorted(p.x for p in pts), ys=sorted(p.y for p in pts))

    @property
    def universe(self) -> int:
        """Size of each rank-space dimension (= number of points)."""
        return len(self.xs)

    # ------------------------------------------------------------------
    # Point mapping
    # ------------------------------------------------------------------
    def to_rank(self, point: Point) -> Point:
        """Map a data point to its rank-space image."""
        rx = bisect.bisect_left(self.xs, point.x)
        ry = bisect.bisect_left(self.ys, point.y)
        return Point(rx, ry, point.ident)

    def from_rank(self, point: Point) -> Point:
        """Map a rank-space point back to original coordinates."""
        return Point(self.xs[int(point.x)], self.ys[int(point.y)], point.ident)

    # ------------------------------------------------------------------
    # Query mapping (predecessor-search semantics)
    # ------------------------------------------------------------------
    def x_rank_of_query(self, value: float, side: str) -> float:
        """Rank-space value representing query coordinate ``value``.

        ``side='lo'`` gives the rank of the successor (lower bounds must not
        drop points whose coordinate equals or exceeds ``value``);
        ``side='hi'`` gives the rank of the predecessor.
        """
        return _rank_of_query(self.xs, value, side)

    def y_rank_of_query(self, value: float, side: str) -> float:
        return _rank_of_query(self.ys, value, side)

    def map_query(self, query: RangeQuery) -> RangeQuery:
        """Map a query rectangle into rank space."""
        return RangeQuery(
            x_lo=self.x_rank_of_query(query.x_lo, "lo"),
            x_hi=self.x_rank_of_query(query.x_hi, "hi"),
            y_lo=self.y_rank_of_query(query.y_lo, "lo"),
            y_hi=self.y_rank_of_query(query.y_hi, "hi"),
        )

    def predecessor_search_cost(self, block_size: int) -> int:
        """Modelled ``O(log log_B U)`` I/O cost of one coordinate conversion."""
        universe = max(2, self.universe)
        log_b_u = max(2.0, math.log(universe, max(2, block_size)))
        return max(1, math.ceil(math.log2(log_b_u)))


def to_rank_space(points: Sequence[Point]) -> Tuple[List[Point], RankSpaceMap]:
    """Map an arbitrary point set into rank space.

    Returns the mapped points and the :class:`RankSpaceMap` needed to map
    queries and un-map results.
    """
    mapping = RankSpaceMap.build(points)
    return [mapping.to_rank(p) for p in points], mapping


def _rank_of_query(sorted_values: List[float], value: float, side: str) -> float:
    if value == math.inf:
        return math.inf
    if value == -math.inf:
        return -math.inf
    if side == "lo":
        # Smallest rank whose coordinate is >= value.
        return bisect.bisect_left(sorted_values, value)
    if side == "hi":
        # Largest rank whose coordinate is <= value.
        return bisect.bisect_right(sorted_values, value) - 1
    raise ValueError(f"side must be 'lo' or 'hi', got {side!r}")
