"""Tests for the staircase helper and the rank-space reduction."""

import math

import pytest

from repro.core.point import Point
from repro.core.queries import FourSidedQuery, TopOpenQuery
from repro.core.rankspace import RankSpaceMap, to_rank_space
from repro.core.staircase import Staircase


def sample_points():
    return [Point(1, 9), Point(3, 7), Point(5, 5), Point(7, 3), Point(9, 1)]


def test_staircase_construction_from_arbitrary_points():
    points = [Point(1, 9), Point(2, 1), Point(3, 7), Point(4, 2), Point(5, 5)]
    staircase = Staircase(points)
    assert [p.x for p in staircase.points()] == [1, 3, 5]


def test_staircase_validation_rejects_non_staircase():
    with pytest.raises(ValueError):
        Staircase([Point(1, 1), Point(2, 2)], already_maximal=True)


def test_staircase_queries():
    staircase = Staircase(sample_points(), already_maximal=True)
    assert len(staircase) == 5
    assert staircase.highest() == Point(1, 9)
    assert staircase.lowest() == Point(9, 1)
    assert staircase.above(4) == [Point(1, 9), Point(3, 7), Point(5, 5)]
    assert staircase.right_neighbour(Point(3, 7)) == Point(5, 5)
    assert staircase.right_neighbour(Point(9, 1)) is None
    assert staircase.dominator_exists(Point(4, 4))
    assert not staircase.dominator_exists(Point(10, 10))
    assert staircase.first_in_x_range(2, 6) == Point(3, 7)
    assert staircase.first_in_x_range(10, 12) is None
    assert staircase[0] == Point(1, 9)
    assert not staircase.is_empty()


def test_staircase_merge_and_restrict():
    a = Staircase([Point(1, 9), Point(5, 5)], already_maximal=True)
    b = Staircase([Point(3, 7), Point(7, 3)], already_maximal=True)
    merged = a.merge(b)
    assert [p.x for p in merged.points()] == [1, 3, 5, 7]
    restricted = merged.restrict(x_lo=2, x_hi=6, y_lo=6)
    assert [p.x for p in restricted.points()] == [3]
    empty = Staircase([])
    assert empty.is_empty() and empty.highest() is None and empty.lowest() is None


def test_rank_space_roundtrip():
    points = [Point(10, 300), Point(20, 100), Point(30, 200)]
    ranked, mapping = to_rank_space(points)
    assert sorted((p.x, p.y) for p in ranked) == [(0, 2), (1, 0), (2, 1)]
    for original, rank in zip(points, ranked):
        assert mapping.from_rank(rank) == original
    assert mapping.universe == 3


def test_rank_space_query_mapping_preserves_answers():
    points = [Point(10, 300, 0), Point(20, 100, 1), Point(30, 200, 2), Point(40, 400, 3)]
    ranked, mapping = to_rank_space(points)
    query = FourSidedQuery(15, 35, 150, 450)
    mapped = mapping.map_query(query)
    original_inside = {p.ident for p in points if query.contains(p)}
    rank_inside = {p.ident for p in ranked if mapped.contains(p)}
    assert original_inside == rank_inside


def test_rank_space_infinite_bounds_and_costs():
    mapping = RankSpaceMap.build([Point(1, 1), Point(2, 2)])
    query = TopOpenQuery(-math.inf, math.inf, -math.inf)
    mapped = mapping.map_query(query)
    assert mapped.x_lo == -math.inf and mapped.x_hi == math.inf
    assert mapping.predecessor_search_cost(block_size=16) >= 1
    with pytest.raises(ValueError):
        mapping.x_rank_of_query(1.0, "middle")
