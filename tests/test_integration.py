"""Integration and cross-structure property tests.

Every structure of the library answers the same queries on the same data;
these tests check they all agree with each other (and with the in-memory
reference) across query shapes, and that the documented I/O hierarchy
(paper structures beating the baselines) holds end to end.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import NaiveScanSkyline, RTreeBBS
from repro.core.point import Point
from repro.core.queries import FourSidedQuery, TopOpenQuery
from repro.core.skyline import range_skyline
from repro.em.config import EMConfig
from repro.em.storage import StorageManager
from repro.structures import (
    DynamicTopOpenStructure,
    FourSidedStructure,
    StaticTopOpenStructure,
)
from repro.workloads import top_open_queries, uniform_points


def make_storage(block_size=16):
    return StorageManager(EMConfig(block_size=block_size, memory_blocks=32))


def test_all_top_open_structures_agree():
    points = uniform_points(300, seed=31)
    static = StaticTopOpenStructure(make_storage(), points)
    dynamic = DynamicTopOpenStructure(make_storage(), points=points, epsilon=0.5)
    four_sided = FourSidedStructure(make_storage(), points, epsilon=0.5)
    bbs = RTreeBBS(make_storage(), points)
    for query in top_open_queries(points, 25, selectivity=0.4, seed=32):
        reference = sorted((p.x, p.y) for p in range_skyline(points, query))
        for structure in [static, dynamic, four_sided, bbs]:
            assert sorted((p.x, p.y) for p in structure.query(query)) == reference


def test_four_sided_and_naive_agree_on_all_rectangles():
    points = uniform_points(250, seed=33)
    structure = FourSidedStructure(make_storage(), points, epsilon=0.5)
    naive = NaiveScanSkyline(make_storage(), points)
    rng = random.Random(34)
    values = sorted(p.x for p in points) + sorted(p.y for p in points)
    for _ in range(25):
        x_lo, x_hi = sorted(rng.sample(values, 2))
        y_lo, y_hi = sorted(rng.sample(values, 2))
        query = FourSidedQuery(x_lo, x_hi, y_lo, y_hi)
        assert sorted((p.x, p.y) for p in structure.query(query)) == sorted(
            (p.x, p.y) for p in naive.query(query)
        )


def test_paper_structure_beats_naive_on_io():
    points = uniform_points(2000, seed=35)
    queries = top_open_queries(points, 5, selectivity=0.3, seed=35)

    paper_storage = make_storage(block_size=32)
    paper = StaticTopOpenStructure(paper_storage, points)
    naive_storage = make_storage(block_size=32)
    naive = NaiveScanSkyline(naive_storage, points)

    def cost(storage, structure):
        total = 0
        for query in queries:
            storage.drop_cache()
            before = storage.snapshot()
            structure.query(query)
            total += (storage.snapshot() - before).total
        return total

    assert cost(paper_storage, paper) < cost(naive_storage, naive)


def test_dynamic_structure_tracks_a_changing_dataset():
    """Insert, delete and query in waves; results always match brute force."""
    rng = random.Random(36)
    structure = DynamicTopOpenStructure(make_storage(), epsilon=0.5)
    live = []
    for wave in range(5):
        new_points = [
            Point(rng.uniform(0, 1000) + wave, rng.uniform(0, 1000) + wave, wave * 100 + i)
            for i in range(40)
        ]
        for point in new_points:
            structure.insert(point)
            live.append(point)
        for _ in range(10):
            victim = live.pop(rng.randrange(len(live)))
            assert structure.delete(victim)
        query = TopOpenQuery(100, 900, 400)
        assert sorted((p.x, p.y) for p in structure.query(query)) == sorted(
            (p.x, p.y) for p in range_skyline(live, query)
        )


coordinates = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
    ),
    min_size=1,
    max_size=60,
    unique_by=(lambda t: t[0], lambda t: t[1]),
)
rectangles = st.tuples(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=0, max_value=500),
)


@settings(max_examples=25, deadline=None)
@given(coordinates, rectangles)
def test_four_sided_structure_property(coords, rectangle):
    """FourSidedStructure == brute force on arbitrary inputs and rectangles."""
    points = [Point(x, y, i) for i, (x, y) in enumerate(coords)]
    x_lo, x_hi = sorted(rectangle[:2])
    y_lo, y_hi = sorted(rectangle[2:])
    query = FourSidedQuery(x_lo, x_hi, y_lo, y_hi)
    structure = FourSidedStructure(make_storage(block_size=8), points, epsilon=0.5)
    expected = sorted((p.x, p.y) for p in range_skyline(points, query))
    assert sorted((p.x, p.y) for p in structure.query(query)) == expected


@settings(max_examples=25, deadline=None)
@given(coordinates, rectangles)
def test_static_top_open_structure_property(coords, rectangle):
    """StaticTopOpenStructure == brute force on arbitrary inputs."""
    points = [Point(x, y, i) for i, (x, y) in enumerate(coords)]
    x_lo, x_hi = sorted(rectangle[:2])
    query = TopOpenQuery(x_lo, x_hi, rectangle[2])
    structure = StaticTopOpenStructure(make_storage(block_size=8), points)
    expected = sorted((p.x, p.y) for p in range_skyline(points, query))
    assert sorted((p.x, p.y) for p in structure.query(query)) == expected
