"""Tests for the streaming tier (repro.stream).

The acceptance properties:

* **Windows are skylines** -- :class:`WindowedSkyline` (count and span
  modes) reports exactly the maxima of the live window at every step,
  matching a naive recomputation over the raw window contents, including
  the edge cases (empty window, all-dominated input, window of one,
  exact span boundary); regressing or duplicate x-coordinates are
  rejected.
* **Ledger partition** -- the window's three meters satisfy
  ``append_io + expire_io + query_io == io_total`` at all times, and the
  engine identity ``attributed + maintenance == total - build`` holds
  after **every** notification batch a pump delivers.
* **Replay equivalence** (hypothesis) -- replaying a subscription's
  deltas, in revision order, over its initial snapshot reconstructs the
  naive recomputed skyline exactly for *arbitrary* interleavings of
  inserts, deletes and pumps.
* **Scope skipping** -- a subscription whose shards were not written is
  skipped at zero block transfers, and skipping never changes answers.
* **Resumable top-k** -- pages tile the pinned snapshot exactly (no
  point skipped or repeated) no matter how many updates interleave, the
  cursor doubles as an engine pagination cursor, and window-pinned
  streams keep ``WindowedSkyline.ledger_ok()`` true mid-iteration.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.point import Point
from repro.core.queries import RangeQuery
from repro.em.config import EMConfig
from repro.em.storage import StorageManager
from repro.engine import (
    QueryRequest,
    SkylineEngine,
    StreamRequest,
    SubscribeRequest,
    UpdateRequest,
)
from repro.engine.report import KIND_DELTA, KIND_STREAM
from repro.stream import (
    STRUCTURE_ENGINE_SNAPSHOT,
    STRUCTURE_WINDOW_SNAPSHOT,
    THEOREM_3_BOUND,
    WINDOW_COUNT,
    WINDOW_SPAN,
    ResumableTopK,
    SubscriptionManager,
    WindowedSkyline,
)


def _canon(points):
    return sorted((p.x, p.y, p.ident) for p in points)


def _engine_ledger_ok(engine) -> bool:
    return (
        engine.attributed_io() + engine.maintenance_io()
        == engine.io_total() - engine.build_io
    )


def _naive_window_skyline(window_points):
    """Maxima of the window: no *newer* point with y >= theirs.

    ``window_points`` is the raw live window in arrival (x) order.
    """
    out = []
    for i, p in enumerate(window_points):
        if all(q.y < p.y for q in window_points[i + 1:]):
            out.append(p)
    return out


def _stream(n, seed, y_max=1000.0):
    rng = random.Random(seed)
    return [
        Point(i + rng.uniform(0.1, 0.9), rng.uniform(0.0, y_max), ident=i)
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# WindowedSkyline: correctness against naive recomputation
# ----------------------------------------------------------------------
def test_count_window_matches_naive_at_every_step():
    points = _stream(300, seed=1)
    sky = WindowedSkyline(
        40, WINDOW_COUNT, em_config=EMConfig(block_size=16, memory_blocks=16)
    )
    for i, p in enumerate(points):
        sky.append(p)
        window = points[max(0, i - 39): i + 1]
        assert len(sky) == len(window)
        assert _canon(sky.skyline()) == _canon(_naive_window_skyline(window))
        assert sky.ledger_ok()


def test_span_window_matches_naive_at_every_step():
    points = _stream(300, seed=2)
    span = 35.0
    sky = WindowedSkyline(
        span, WINDOW_SPAN, em_config=EMConfig(block_size=16, memory_blocks=16)
    )
    for i, p in enumerate(points):
        sky.append(p)
        window = [q for q in points[: i + 1] if q.x > p.x - span]
        assert len(sky) == len(window)
        assert _canon(sky.skyline()) == _canon(_naive_window_skyline(window))
        assert sky.ledger_ok()


@settings(max_examples=40, deadline=None)
@given(
    ys=st.lists(
        st.integers(min_value=0, max_value=30), min_size=1, max_size=120
    ),
    window=st.integers(min_value=1, max_value=25),
)
def test_count_window_matches_naive_for_arbitrary_streams(ys, window):
    """Heavily tied y-values (attrition is >=, not >) stay correct."""
    points = [Point(float(i) + 0.5, float(y), ident=i) for i, y in enumerate(ys)]
    sky = WindowedSkyline(window, WINDOW_COUNT, chunk=4)
    for i, p in enumerate(points):
        sky.append(p)
        live = points[max(0, i - window + 1): i + 1]
        assert len(sky) == len(live)
        assert _canon(sky.skyline()) == _canon(_naive_window_skyline(live))
    assert sky.ledger_ok()


def test_empty_window_reports_empty_skyline():
    sky = WindowedSkyline(8, WINDOW_COUNT)
    assert sky.skyline() == []
    assert len(sky) == 0
    assert sky.ledger_ok()
    assert sky.io_total() == 0


def test_all_dominated_stream_keeps_one_survivor():
    """Monotonically rising readings: each append attrites the entire
    window, so the skyline is always exactly the newest point."""
    sky = WindowedSkyline(16, WINDOW_COUNT, chunk=4)
    for i in range(64):
        p = Point(float(i) + 0.5, float(i), ident=i)
        sky.append(p)
        assert _canon(sky.skyline()) == _canon([p])
    assert sky.ledger_ok()


def test_window_of_one_is_the_latest_point():
    sky = WindowedSkyline(1, WINDOW_COUNT, chunk=3)
    for p in _stream(40, seed=3):
        sky.append(p)
        assert len(sky) == 1
        assert _canon(sky.skyline()) == _canon([p])


def test_span_boundary_is_exclusive():
    """A point exactly ``span`` behind the newest has expired."""
    sky = WindowedSkyline(2.0, WINDOW_SPAN, chunk=2)
    sky.append(Point(0.0, 5.0, ident=0))
    sky.append(Point(1.0, 4.0, ident=1))
    sky.append(Point(2.0, 3.0, ident=2))  # x=0 is at the boundary: out
    assert len(sky) == 2
    assert _canon(sky.skyline()) == _canon(
        [Point(1.0, 4.0, ident=1), Point(2.0, 3.0, ident=2)]
    )


def test_duplicate_and_regressing_x_are_rejected():
    sky = WindowedSkyline(8, WINDOW_COUNT)
    sky.append(Point(5.0, 1.0, ident=0))
    with pytest.raises(ValueError, match="strictly increasing"):
        sky.append(Point(5.0, 2.0, ident=1))
    with pytest.raises(ValueError, match="strictly increasing"):
        sky.append(Point(4.0, 2.0, ident=2))
    # The rejected appends changed nothing.
    assert len(sky) == 1
    assert _canon(sky.skyline()) == _canon([Point(5.0, 1.0, ident=0)])


def test_window_constructor_validation():
    with pytest.raises(ValueError, match="mode"):
        WindowedSkyline(8, "sliding")
    with pytest.raises(ValueError, match="count window"):
        WindowedSkyline(0, WINDOW_COUNT)
    with pytest.raises(ValueError, match="count window"):
        WindowedSkyline(2.5, WINDOW_COUNT)
    with pytest.raises(ValueError, match="span window"):
        WindowedSkyline(0.0, WINDOW_SPAN)
    with pytest.raises(ValueError, match="chunk"):
        WindowedSkyline(8, WINDOW_COUNT, chunk=0)


def test_window_ledger_partitions_and_explain():
    sky = WindowedSkyline(
        64, WINDOW_COUNT, em_config=EMConfig(block_size=16, memory_blocks=8)
    )
    for p in _stream(400, seed=4):
        sky.append(p)
    for _ in range(5):
        sky.skyline()
    assert sky.ledger_ok()
    assert sky.append_io + sky.expire_io + sky.query_io == sky.io_total()
    assert sky.append_io > 0  # seals wrote record blocks
    explained = sky.explain()
    assert explained["bound"] == THEOREM_3_BOUND
    assert explained["structure"] == "windowed-iocpqa"
    described = sky.describe()
    assert described["live"] == len(sky) == 64
    assert described["ledger_ok"] is True


def test_shared_storage_is_supported():
    storage = StorageManager(EMConfig(block_size=16, memory_blocks=16))
    sky = WindowedSkyline(16, WINDOW_COUNT, storage=storage, chunk=8)
    for p in _stream(64, seed=5):
        sky.append(p)
    assert sky.storage is storage
    assert sky.ledger_ok()


# ----------------------------------------------------------------------
# SubscriptionManager: replay equivalence (hypothesis) and scoping
# ----------------------------------------------------------------------
# A pool of points in general position: unique x, unique y.
_POOL = [
    Point(i * 7.0 + 0.5, ((i * 17) % 48) * 9.0 + 0.25, ident=100 + i)
    for i in range(48)
]
_RECTS = [
    RangeQuery(),  # everything
    RangeQuery(x_lo=60.0, x_hi=240.0),  # one x-band
    RangeQuery(y_lo=200.0),  # top-open threshold
]

subscription_ops = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=47)),
    min_size=1,
    max_size=40,
)


@settings(max_examples=30, deadline=None)
@given(ops=subscription_ops)
def test_replayed_deltas_reconstruct_naive_recompute(ops):
    """Replaying deltas over the initial snapshot == naive recompute,
    for arbitrary insert/delete interleavings; the engine ledger
    identity holds after every notification batch."""
    base = _POOL[:12]
    engine = SkylineEngine.sharded(
        base, shard_count=2, block_size=16, memory_blocks=8
    )
    manager = SubscriptionManager(engine)
    replayed = {}
    for rect in _RECTS:
        sub, initial = manager.register(
            SubscribeRequest(rect, initial_snapshot=True)
        )
        assert initial.revision == 0
        assert initial.report.kind == KIND_DELTA
        state = {}
        for p in initial.entered:
            state[(p.x, p.y, p.ident)] = p
        replayed[sub.sub_id] = (sub, state)

    live = set(range(12))
    for is_insert, idx in ops:
        if is_insert:
            if idx in live:
                continue
            engine.update(UpdateRequest.insert(_POOL[idx]))
            live.add(idx)
        else:
            if idx not in live:
                continue
            engine.update(UpdateRequest.delete(_POOL[idx]))
            live.discard(idx)
        for sub_id, delta in manager.pump().items():
            _sub, state = replayed[sub_id]
            assert not delta.empty
            assert delta.report.kind == KIND_DELTA
            for p in delta.left:
                del state[(p.x, p.y, p.ident)]
            for p in delta.entered:
                state[(p.x, p.y, p.ident)] = p
        assert _engine_ledger_ok(engine)

    for sub, state in replayed.values():
        fresh = engine.query(QueryRequest(rect=sub.request.rect)).points
        assert _canon(state.values()) == _canon(fresh)
        assert _canon(sub.snapshot()) == _canon(fresh)


def test_scope_vectors_skip_unwritten_subscriptions():
    """A write outside a subscription's shards costs it zero blocks."""
    # Shards cut the x-axis; base points spread across it.
    engine = SkylineEngine.sharded(
        _POOL[:32], shard_count=4, block_size=16, memory_blocks=8
    )
    service = engine.backend.service
    manager = SubscriptionManager(engine)
    _lo, hi = service.router.shard_range(0)
    cold_rect = RangeQuery(x_hi=hi / 2.0)  # strictly inside shard 0
    hot_rect = RangeQuery()
    cold, _ = manager.register(SubscribeRequest(cold_rect))
    hot, _ = manager.register(SubscribeRequest(hot_rect))

    # Nothing written: the pump skips both subscriptions outright.
    before = engine.io_total()
    assert manager.pump() == {}
    assert engine.io_total() == before
    assert manager.describe()["skipped"] == 2

    # Write far outside the cold band: only the full-universe
    # subscription recomputes.
    engine.update(UpdateRequest.insert(Point(10_000.0, 10_000.0, ident=999)))
    deltas = manager.pump()
    counters = manager.describe()
    assert counters["skipped"] == 3  # cold skipped again
    assert counters["recomputed"] == 1
    assert list(deltas) == [hot.sub_id]
    assert (10_000.0, 10_000.0, 999) in _canon(deltas[hot.sub_id].entered)
    assert _engine_ledger_ok(engine)

    # Skipping never changed answers.
    assert _canon(cold.snapshot()) == _canon(
        engine.query(QueryRequest(rect=cold_rect)).points
    )


def test_batched_pump_probes_each_scope_group_once():
    """Subscriptions sharing a scope vector cost one staleness probe."""
    engine = SkylineEngine.sharded(
        _POOL[:32], shard_count=4, block_size=16, memory_blocks=8
    )
    service = engine.backend.service
    manager = SubscriptionManager(engine)
    _lo, hi = service.router.shard_range(0)
    narrow = RangeQuery(x_hi=hi / 2.0)
    for _ in range(8):
        manager.register(SubscribeRequest(narrow))
    manager.register(SubscribeRequest(RangeQuery()))
    assert manager.pump() == {}
    counters = manager.describe()
    assert counters["skipped"] == 9
    # Two distinct scope vectors -> two probes, not nine router walks.
    assert counters["scope_scans"] == 2


def test_pump_recomputes_after_topology_retires_scope_uids():
    """A topology cut retires uids, so scoped staleness still fires."""
    engine = SkylineEngine.sharded(
        _POOL[:32], shard_count=2, block_size=16, memory_blocks=8
    )
    service = engine.backend.service
    manager = SubscriptionManager(engine)
    sub, _ = manager.register(SubscribeRequest(RangeQuery()))
    assert service.split_shard(0) is not None
    deltas = manager.pump()
    assert manager.describe()["recomputed"] == 1
    # A metadata-only split changes no answer, so nothing is delivered,
    # but the scope vector was refreshed to the children's uids.
    assert deltas == {}
    assert sub.scopes is not None
    live = {shard.uid for shard in service.shards}
    assert {uid for uid, _v in sub.scopes} <= live
    assert _canon(sub.snapshot()) == _canon(
        engine.query(QueryRequest(rect=RangeQuery())).points
    )


def test_scope_vectors_on_local_backend_always_recompute():
    engine = SkylineEngine.local(_POOL[:16], dynamic=True)
    manager = SubscriptionManager(engine)
    sub, _ = manager.register(SubscribeRequest(RangeQuery()))
    assert sub.scopes is None
    manager.pump()
    counters = manager.describe()
    assert counters["recomputed"] == 1 and counters["skipped"] == 0


def test_unregister_stops_deltas():
    engine = SkylineEngine.sharded(
        _POOL[:16], shard_count=2, block_size=16, memory_blocks=8
    )
    manager = SubscriptionManager(engine)
    sub, _ = manager.register(SubscribeRequest(RangeQuery()))
    assert manager.unregister(sub.sub_id) is True
    assert manager.unregister(sub.sub_id) is False
    engine.update(UpdateRequest.insert(Point(9_999.0, 9_999.0, ident=1)))
    assert manager.pump() == {}
    assert len(manager) == 0


# ----------------------------------------------------------------------
# ResumableTopK: pages tile a pinned snapshot under interleaved updates
# ----------------------------------------------------------------------
def test_window_stream_pages_tile_the_pinned_snapshot():
    sky = WindowedSkyline(
        128, WINDOW_COUNT, em_config=EMConfig(block_size=16, memory_blocks=8)
    )
    points = _stream(400, seed=6)
    for p in points[:200]:
        sky.append(p)
    pinned = sky.skyline()  # the answer frozen at pin time

    stream = ResumableTopK.over_window(sky, StreamRequest(page_size=5))
    # Interleave 200 more appends -- expiry churns every component.
    paged = []
    for i, p in enumerate(points[200:]):
        sky.append(p)
        if i % 10 == 0 and not stream.exhausted:
            page = stream.next_page()
            assert len(page) <= 5
            assert page.report.kind == KIND_STREAM
            assert page.report.structure == STRUCTURE_WINDOW_SNAPSHOT
            paged.extend(page.points)
    for page in stream.pages():
        paged.extend(page.points)

    # Exactly the pinned answer: nothing skipped, nothing repeated,
    # emitted in increasing x.
    assert [(p.x, p.y, p.ident) for p in paged] == [
        (p.x, p.y, p.ident) for p in pinned
    ]
    assert stream.exhausted
    # Snapshot pops were credited to the window's query meter.
    assert sky.ledger_ok()


def test_window_stream_filters_by_rectangle():
    sky = WindowedSkyline(64, WINDOW_COUNT, chunk=8)
    for p in _stream(64, seed=7):
        sky.append(p)
    rect = RangeQuery(y_lo=300.0)
    got = list(ResumableTopK.over_window(sky, StreamRequest(rect=rect)))
    expected = [p for p in sky.skyline() if rect.contains(p)]
    assert _canon(got) == _canon(expected)


def test_engine_stream_is_immune_to_interleaved_updates():
    engine = SkylineEngine.sharded(
        _POOL[:24], shard_count=2, block_size=16, memory_blocks=8
    )
    rect = RangeQuery()
    pinned = engine.query(QueryRequest(rect=rect)).points
    stream = ResumableTopK.over_engine(engine, StreamRequest(rect=rect, page_size=3))
    paged = []
    extra = iter(_POOL[24:])
    while not stream.exhausted:
        page = stream.next_page()
        assert page.report.structure == STRUCTURE_ENGINE_SNAPSHOT
        paged.extend(page.points)
        # A dominating insert between every page: the live skyline
        # changes, the pinned stream must not.
        nxt = next(extra, None)
        if nxt is not None:
            engine.update(UpdateRequest.insert(nxt))
    assert _canon(paged) == _canon(pinned)
    assert paged == sorted(paged, key=lambda p: p.x)
    assert _engine_ledger_ok(engine)


def test_stream_cursor_resumes_an_engine_query():
    """The stream cursor is a valid engine pagination cursor: a client
    that outlives its snapshot continues against live data."""
    engine = SkylineEngine.sharded(
        _POOL[:24], shard_count=2, block_size=16, memory_blocks=8
    )
    rect = RangeQuery()
    stream = ResumableTopK.over_engine(engine, StreamRequest(rect=rect, page_size=4))
    first = stream.next_page()
    assert first.next_cursor == stream.cursor == first.points[-1].x
    resumed = engine.query(QueryRequest(rect=rect, cursor=stream.cursor))
    remainder = [p for page in stream.pages() for p in page]
    assert _canon(resumed.points) == _canon(remainder)


def test_stream_describe_and_exhaustion():
    sky = WindowedSkyline(32, WINDOW_COUNT, chunk=8)
    for p in _stream(32, seed=8):
        sky.append(p)
    stream = ResumableTopK.over_window(sky, StreamRequest(page_size=100))
    structure, yielded, cursor, exhausted = stream.describe()
    assert structure == STRUCTURE_WINDOW_SNAPSHOT
    assert yielded == 0 and cursor is None and not exhausted
    page = stream.next_page()
    assert page.exhausted and stream.exhausted
    structure, yielded, cursor, exhausted = stream.describe()
    assert yielded == len(page) and cursor == page.points[-1].x and exhausted
    # Draining an exhausted stream yields an empty final page, not an error.
    assert len(stream.next_page()) == 0
