"""``# repro: <kind>(<argument>)`` pragma comments.

The lint passes read three pragma kinds:

``uncharged-io(<reason>)``
    Marks a deliberate use of an uncharged disk access (``peek`` /
    ``poke`` / raw block-state access) so :mod:`repro.analysis.iolint`
    accepts it.  The reason is mandatory and should say *why* the access
    is legitimately free in the cost model.

``untracked-lock(<reason>)``
    Marks a raw ``threading.Lock/RLock/Condition`` construction the
    lock-discipline pass would otherwise reject inside the concurrency
    tier (locks there must be created via
    :func:`repro.analysis.locks.tracked_lock` so the runtime tracker can
    see them).

``unguarded-call(<reason>)``
    Marks a call through a guarded attribute (see the ``guards(...)``
    directive) that is deliberately made outside the guarding lock.

plus one *directive* kind that adds information instead of suppressing:

``calls(<Class.method>)``
    Declares that the call on this line dynamically dispatches to
    ``Class.method`` (e.g. a pluggable callable attribute, or a call
    that crosses a module boundary the name-resolution of the static
    pass does not follow).  The lock pass uses it to extend the static
    lock-order graph across those hops.

``guards(<attr>)``
    Placed on a ``tracked_lock(...)`` construction line: every call
    through ``self.<attr>`` in the same class must then be dominated by
    a ``with`` on that lock.

A pragma applies to the source line it sits on; for a statement spanning
several lines, any line of the span (or the line directly above the
statement) works.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

PRAGMA_RE = re.compile(r"repro:\s*([a-z-]+)\(([^()]*)\)")

SUPPRESSING_KINDS: Tuple[str, ...] = (
    "uncharged-io",
    "untracked-lock",
    "unguarded-call",
)
DIRECTIVE_KINDS: Tuple[str, ...] = ("calls", "guards")


@dataclass(frozen=True)
class Pragma:
    """One parsed pragma comment."""

    kind: str
    argument: str
    line: int


@dataclass
class PragmaMap:
    """Pragmas of one file, indexed by line, with use tracking."""

    by_line: Dict[int, List[Pragma]] = field(default_factory=dict)
    _used: Set[Pragma] = field(default_factory=set)

    def _covering_lines(self, first_line: int, span_end: int) -> List[int]:
        """The lines whose pragmas apply to a statement spanning
        ``first_line``..``span_end``: the span itself plus the contiguous
        run of pragma-bearing lines directly above it (several stacked
        pragma comments all apply to the statement below them)."""
        lines: List[int] = []
        above = first_line - 1
        while above in self.by_line:
            lines.append(above)
            above -= 1
        lines.reverse()
        lines.extend(range(first_line, span_end + 1))
        return lines

    def find(
        self, kind: str, first_line: int, last_line: Optional[int] = None
    ) -> Optional[Pragma]:
        """A ``kind`` pragma covering the statement spanning
        ``first_line``..``last_line`` (or sitting directly above it).
        Marks the pragma used."""
        span_end = last_line if last_line is not None else first_line
        for line in self._covering_lines(first_line, span_end):
            for pragma in self.by_line.get(line, ()):
                if pragma.kind == kind:
                    self._used.add(pragma)
                    return pragma
        return None

    def find_all(
        self, kind: str, first_line: int, last_line: Optional[int] = None
    ) -> List[Pragma]:
        """Every ``kind`` pragma covering the given statement span (used
        for ``calls(...)`` directives, which may repeat)."""
        span_end = last_line if last_line is not None else first_line
        matches: List[Pragma] = []
        for line in self._covering_lines(first_line, span_end):
            for pragma in self.by_line.get(line, ()):
                if pragma.kind == kind:
                    self._used.add(pragma)
                    matches.append(pragma)
        return matches

    def unused(self, kinds: Tuple[str, ...] = SUPPRESSING_KINDS) -> List[Pragma]:
        """Suppressing pragmas that matched no finding (stale escapes)."""
        stale: List[Pragma] = []
        for pragmas in self.by_line.values():
            for pragma in pragmas:
                if pragma.kind in kinds and pragma not in self._used:
                    stale.append(pragma)
        return sorted(stale, key=lambda p: p.line)


def scan_pragmas(source: str) -> PragmaMap:
    """Extract every ``# repro: ...`` pragma comment of ``source``.

    Uses the tokenizer, so pragma-looking text inside string literals is
    ignored.  A file that fails to tokenize yields an empty map (the AST
    passes will report the syntax error on their own).
    """
    result = PragmaMap()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            for match in PRAGMA_RE.finditer(token.string):
                pragma = Pragma(
                    kind=match.group(1),
                    argument=match.group(2).strip(),
                    line=token.start[0],
                )
                result.by_line.setdefault(pragma.line, []).append(pragma)
    except tokenize.TokenizeError:
        return PragmaMap()
    return result
