"""Table 1, row 6 / Theorem 4: dynamic top-open structure.

Claim: O(n/B) space, O(log_{2B^eps}(n/B) + k/B^{1-eps}) query I/Os and
O(log_{2B^eps}(n/B)) update I/Os, for any eps in [0, 1].  The sweep varies n
and eps; the ratio columns should stay within a constant band, and larger
eps should reduce the height-driven part of the cost (shallower base tree)
at the expense of the per-output term.
"""

from __future__ import annotations

import pytest

from repro.bench import BenchmarkTable, measure_queries, measure_updates
from repro.bench.harness import make_storage
from repro.structures.dynamic_topopen import (
    DynamicTopOpenStructure,
    dynamic_query_bound,
    dynamic_update_bound,
)
from repro.workloads import top_open_queries, uniform_points

BLOCK_SIZE = 64
SWEEP = [(512, 0.0), (2048, 0.0), (512, 0.5), (2048, 0.5), (512, 1.0), (2048, 1.0)]
QUERIES_PER_CONFIG = 8
UPDATES_PER_CONFIG = 32


def run_sweep() -> BenchmarkTable:
    table = BenchmarkTable("Table 1 row 6 -- dynamic top-open (I/O-CPQA based)")
    for n, epsilon in SWEEP:
        storage = make_storage(block_size=BLOCK_SIZE)
        points = uniform_points(n, seed=n + int(10 * epsilon))
        structure = DynamicTopOpenStructure(storage, points=points, epsilon=epsilon)
        queries = top_open_queries(points, QUERIES_PER_CONFIG, selectivity=0.3, seed=n)
        query_io, avg_k = measure_queries(storage, structure, queries)
        extra = uniform_points(UPDATES_PER_CONFIG, seed=n + 999)
        update_io = measure_updates(storage, structure.insert, extra)
        table.add(
            measured_io=query_io,
            predicted=dynamic_query_bound(n, int(avg_k), BLOCK_SIZE, epsilon),
            n=n,
            eps=epsilon,
            B=BLOCK_SIZE,
            avg_k=round(avg_k, 1),
            update_io=round(update_io, 2),
            update_bound=round(dynamic_update_bound(n, BLOCK_SIZE, epsilon), 2),
            height=structure.height(),
        )
    return table


@pytest.fixture(scope="module")
def sweep_table() -> BenchmarkTable:
    return run_sweep()


def test_dynamic_topopen_shapes(benchmark, sweep_table, capsys):
    """Query and update I/Os follow the Theorem 4 bounds across n and eps."""
    with capsys.disabled():
        sweep_table.show()
    assert sweep_table.max_ratio_spread() < 12.0
    for row in sweep_table.rows:
        assert row.params["update_io"] < 40 * row.params["update_bound"]

    storage = make_storage(block_size=BLOCK_SIZE)
    points = uniform_points(512, seed=77)
    structure = DynamicTopOpenStructure(storage, points=points, epsilon=0.5)
    query = top_open_queries(points, 1, selectivity=0.3, seed=77)[0]
    benchmark(lambda: structure.query(query))
