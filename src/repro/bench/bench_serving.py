"""Serving-tier benchmarks: coalescing I/O savings and shed-bounded tails.

Three cells, all driving a :class:`repro.serve.SkylineServer` in front of
a sharded engine and all measured in the repo's common currency (block
transfers on the simulated machines) next to wall-clock seconds:

1. **Coalescing** (:func:`run_serving_sweep` modes ``coalesced`` /
   ``uncoalesced``): the same Zipf-skewed multi-client read burst is
   served twice -- once with cross-caller coalescing on (duplicate
   requests inside a gather window collapse onto one leader execution
   through the engine's native batch path) and once with every gathered
   submission executed individually.  The result cache is off and the
   buffer pools are small, so the saving must show up in the block
   ledger itself, not in cache luck; per-request answers are checked
   identical between the two modes before either row is recorded.

2. **Backpressure** (modes ``block`` / ``shed``): a burst far past
   saturation is staged into the intake queue before the server starts.
   Under the ``block`` policy (queue deep enough for the whole burst)
   every request is served but late submissions inherit the whole
   backlog as queue wait; under the ``shed`` policy a small bounded
   queue admits what it can and fails the rest fast with the typed
   ``Overloaded`` error.  The claim: shedding keeps the *served* p99
   latency bounded -- at most the blocking run's p99 -- while accounting
   for every submission (``served + shed == submitted``).

3. **Closed loop** (mode ``closed-loop``): ``clients`` worker threads
   each submit their next request only after the previous one completed
   -- reads from the shared Zipf pool plus a deterministic insert mix on
   the serialized writer lane -- giving an end-to-end throughput /
   latency / ledger row under genuinely concurrent callers.

Every cell asserts the engine's ledger partition
``attributed + maintenance == total - build`` exactly: the serving tier
must never lose or double-charge a block transfer, at any concurrency.

``benchmarks/bench_serving.py`` drives the sweep (pytest or ``--quick``
CLI) and persists the table to ``BENCH_serving.json``.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Sequence, Tuple

from repro.bench.reporting import BenchmarkTable
from repro.core.point import Point
from repro.core.queries import RangeQuery
from repro.engine import SkylineEngine, UpdateRequest
from repro.serve import ServerConfig, ServingReport, SkylineServer
from repro.serve.metrics import percentile
from repro.workloads import uniform_points

Summary = Dict[str, Dict[str, float]]


def _canon(points: Sequence[Point]) -> List[Tuple[float, float, object]]:
    return sorted((p.x, p.y, p.ident) for p in points)


def _query_pool(
    pool_size: int, universe: int, seed: int
) -> List[RangeQuery]:
    """``pool_size`` distinct x-band rectangles over the universe."""
    rng = random.Random(seed)
    pool: List[RangeQuery] = []
    for _ in range(pool_size):
        width = universe * rng.uniform(0.05, 0.20)
        x_lo = rng.uniform(0.0, universe - width)
        pool.append(RangeQuery(x_lo=x_lo, x_hi=x_lo + width))
    return pool


def _zipf_sequences(
    pool: Sequence[RangeQuery],
    clients: int,
    requests_per_client: int,
    alpha: float,
    seed: int,
) -> List[List[RangeQuery]]:
    """Per-client request sequences, Zipf-skewed over the shared pool.

    Rank-``r`` pool entries are drawn with probability proportional to
    ``1 / (r + 1) ** alpha``, so concurrent clients keep colliding on the
    same hot rectangles -- the workload coalescing exists for.
    """
    weights = [1.0 / (rank + 1) ** alpha for rank in range(len(pool))]
    return [
        random.Random(seed + 1000 + cid).choices(
            list(pool), weights=weights, k=requests_per_client
        )
        for cid in range(clients)
    ]


def _interleaved(sequences: Sequence[Sequence[RangeQuery]]) -> List[RangeQuery]:
    """Round-robin across clients: request ``i`` of every client lands
    adjacently, exactly as concurrent submitters would interleave."""
    return [
        sequence[i]
        for i in range(len(sequences[0]))
        for sequence in sequences
        if i < len(sequence)
    ]


def _ledger_ok(engine: SkylineEngine) -> bool:
    return (
        engine.attributed_io() + engine.maintenance_io()
        == engine.io_total() - engine.build_io
    )


def _latency_cell(reports: Sequence[ServingReport]) -> Dict[str, float]:
    latencies = [r.latency_s for r in reports]
    return {
        "p50_ms": round(percentile(latencies, 0.50) * 1000.0, 3),
        "p95_ms": round(percentile(latencies, 0.95) * 1000.0, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1000.0, 3),
    }


def _serve_burst(
    engine: SkylineEngine,
    requests: Sequence[RangeQuery],
    config: ServerConfig,
) -> Tuple[List[object], List[ServingReport], Dict[str, float]]:
    """Stage ``requests`` into a stopped server, start it, drain it.

    Pre-loading the queue before :meth:`SkylineServer.start` makes the
    cell deterministic: every gather window is full (coalescing sees its
    duplicates) and an overfull bounded queue sheds an exact count,
    independent of CI timing noise.  Returns the per-request outcomes
    (``ServedQuery`` or the typed exception), the serving reports of the
    served requests, and the cell counters.
    """
    server = SkylineServer(engine, config, start=False)
    io_before = engine.io_total()
    futures = [server.submit_query(request) for request in requests]
    started = time.perf_counter()
    server.start()
    outcomes = []
    for future in futures:
        try:
            outcomes.append(future.result(timeout=120.0))
        except Exception as exc:  # Overloaded / DeadlineExceeded
            outcomes.append(exc)
    elapsed = time.perf_counter() - started
    server.stop()
    served = [o for o in outcomes if not isinstance(o, Exception)]
    reports = [o.serving for o in served]
    metrics = server.metrics.describe()
    cell: Dict[str, float] = {
        "submitted": float(len(requests)),
        "served": float(len(served)),
        "shed": float(metrics["shed"]),
        "blocks": float(engine.io_total() - io_before),
        "seconds": round(elapsed, 6),
        "throughput_rps": round(len(served) / max(1e-9, elapsed), 1),
        "mean_fanin": float(metrics["mean_coalesce_fanin"]),
        "read_batches": float(metrics["read_batches"]),
        "attributed_io": float(engine.attributed_io()),
        "maintenance_io": float(engine.maintenance_io()),
        "io_total": float(engine.io_total()),
        "ledger_ok": 1.0 if _ledger_ok(engine) else 0.0,
        **_latency_cell(reports),
    }
    return outcomes, reports, cell


def run_serving_sweep(
    n: int = 4096,
    clients: int = 8,
    requests_per_client: int = 48,
    pool_size: int = 24,
    zipf_alpha: float = 1.2,
    shard_count: int = 4,
    block_size: int = 16,
    memory_blocks: int = 8,
    gather_window: float = 0.002,
    max_batch: int = 64,
    saturation_burst: int = 256,
    shed_queue: int = 64,
    write_every: int = 8,
    seed: int = 0,
) -> Tuple[BenchmarkTable, Summary]:
    """The three serving cells; see the module docstring for the claims."""
    universe = 1_000_000
    writes_per_client = requests_per_client // write_every
    all_points = uniform_points(
        n + clients * writes_per_client, universe=universe, seed=seed
    )
    base = all_points[:n]
    payload = all_points[n:]
    pool = _query_pool(pool_size, universe, seed + 1)
    sequences = _zipf_sequences(
        pool, clients, requests_per_client, zipf_alpha, seed + 2
    )
    burst = _interleaved(sequences)

    def engine_config(**overrides: object) -> Dict[str, object]:
        cfg: Dict[str, object] = dict(
            shard_count=shard_count,
            block_size=block_size,
            memory_blocks=memory_blocks,
            cache_capacity=0,
        )
        cfg.update(overrides)
        return cfg

    table = BenchmarkTable(
        f"Serving tier -- n={n}, {clients} clients x {requests_per_client} "
        f"requests, Zipf alpha={zipf_alpha} over {pool_size} rectangles, "
        f"B={block_size}"
    )
    summary: Summary = {}

    # -- cell 1: coalescing on vs off over the identical burst ----------
    mode_outcomes: Dict[str, List[object]] = {}
    for mode, coalesce in (("coalesced", True), ("uncoalesced", False)):
        engine = SkylineEngine.sharded(base, **engine_config())
        outcomes, _, cell = _serve_burst(
            engine,
            burst,
            ServerConfig(
                gather_window=gather_window,
                max_batch=max_batch,
                coalesce=coalesce,
                max_read_queue=len(burst),
            ),
        )
        mode_outcomes[mode] = outcomes
        summary[mode] = cell
    for position, (co, un) in enumerate(
        zip(mode_outcomes["coalesced"], mode_outcomes["uncoalesced"])
    ):
        if _canon(co.points) != _canon(un.points):
            raise AssertionError(
                f"coalesced and uncoalesced answers diverge at request "
                f"{position}"
            )

    # -- cell 2: block vs shed past saturation --------------------------
    # Distinct rectangles (no coalescing) so every queued request costs
    # real work and the backlog is what the policies must handle.
    saturation = _query_pool(saturation_burst, universe, seed + 3)
    for mode, queue_cap in (
        ("block", saturation_burst),
        ("shed", shed_queue),
    ):
        engine = SkylineEngine.sharded(base, **engine_config())
        _, _, cell = _serve_burst(
            engine,
            saturation,
            ServerConfig(
                gather_window=gather_window,
                max_batch=max_batch,
                backpressure="shed",
                max_read_queue=queue_cap,
            ),
        )
        summary[mode] = cell

    # -- cell 3: closed-loop mixed clients against a running server -----
    engine = SkylineEngine.sharded(base, **engine_config(cache_capacity=256))
    io_before = engine.io_total()
    reports_lock = threading.Lock()
    reports: List[ServingReport] = []

    def client_loop(server: SkylineServer, cid: int) -> None:
        writes = iter(
            payload[cid * writes_per_client : (cid + 1) * writes_per_client]
        )
        collected = []
        for i, request in enumerate(sequences[cid]):
            if write_every and i % write_every == write_every - 1:
                served = server.update(UpdateRequest.insert(next(writes)))
            else:
                served = server.query(request)
            collected.append(served.serving)
        with reports_lock:
            reports.extend(collected)

    started = time.perf_counter()
    with SkylineServer(
        engine, ServerConfig(gather_window=gather_window, max_batch=max_batch)
    ) as server:
        threads = [
            threading.Thread(target=client_loop, args=(server, cid))
            for cid in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        metrics = server.metrics.describe()
    elapsed = time.perf_counter() - started
    summary["closed-loop"] = {
        "submitted": float(clients * requests_per_client),
        "served": float(metrics["served"]),
        "shed": float(metrics["shed"]),
        "blocks": float(engine.io_total() - io_before),
        "seconds": round(elapsed, 6),
        "throughput_rps": round(metrics["served"] / max(1e-9, elapsed), 1),
        "mean_fanin": float(metrics["mean_coalesce_fanin"]),
        "read_batches": float(metrics["read_batches"]),
        "served_writes": float(metrics["served_writes"]),
        "attributed_io": float(engine.attributed_io()),
        "maintenance_io": float(engine.maintenance_io()),
        "io_total": float(engine.io_total()),
        "ledger_ok": 1.0 if _ledger_ok(engine) else 0.0,
        **_latency_cell(reports),
    }

    for mode in ("coalesced", "uncoalesced", "block", "shed", "closed-loop"):
        cell = summary[mode]
        table.add(
            measured_io=cell["blocks"],
            seconds=cell["seconds"],
            mode=mode,
            served=cell["served"],
            shed=cell["shed"],
            throughput_rps=cell["throughput_rps"],
            p50_ms=cell["p50_ms"],
            p95_ms=cell["p95_ms"],
            p99_ms=cell["p99_ms"],
            fanin=cell["mean_fanin"],
        )
    return table, summary


def check(summary: Summary) -> None:
    """The acceptance assertions both pytest and the CLI enforce."""
    for mode, cell in summary.items():
        assert cell["ledger_ok"] == 1.0, (
            f"ledger partition broke in the {mode} cell"
        )
    coalesced = summary["coalesced"]
    uncoalesced = summary["uncoalesced"]
    assert coalesced["served"] == coalesced["submitted"]
    assert uncoalesced["served"] == uncoalesced["submitted"]
    # The headline claim: coalescing the Zipf burst saves real block
    # transfers, not cache luck (the result cache is off in both modes).
    assert coalesced["blocks"] < uncoalesced["blocks"], (
        f"coalescing saved nothing: {coalesced['blocks']} vs "
        f"{uncoalesced['blocks']} blocks"
    )
    assert coalesced["mean_fanin"] > 1.0, (
        "no cross-caller coalescing happened; the comparison is vacuous"
    )
    block = summary["block"]
    shed = summary["shed"]
    assert shed["shed"] > 0, "saturation burst never tripped admission control"
    assert shed["served"] + shed["shed"] == shed["submitted"], (
        "serving lost submissions: "
        f"{shed['served']} + {shed['shed']} != {shed['submitted']}"
    )
    assert block["served"] == block["submitted"]
    # Past saturation, shedding bounds the tail: the served requests'
    # p99 must not exceed the blocking policy's backlog-inflated p99.
    assert shed["p99_ms"] <= block["p99_ms"], (
        f"shed p99 {shed['p99_ms']}ms exceeds block p99 {block['p99_ms']}ms"
    )
    closed = summary["closed-loop"]
    assert closed["served"] == closed["submitted"]
    assert closed["served_writes"] > 0, "closed loop exercised no writes"
