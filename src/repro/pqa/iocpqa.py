"""The I/O-efficient catenable priority queue with attrition (I/O-CPQA).

Semantics (Section 4.1 of the paper): the queue holds elements from a total
order; ``InsertAndAttrite`` and ``CatenateAndAttrite`` remove ("attrite")
every existing element that is >= the newly arriving minimum.  A direct
consequence is that the surviving content, read in queue order, is always a
*strictly increasing* sequence whose first element is the minimum.

Representation.  The paper organises surviving elements into records of
``Theta(b)`` elements arranged in several deques with a carefully
maintained potential so that every operation moves O(1) records in the
worst case.  This implementation reaches the same I/O bounds with a simpler
persistent representation (see DESIGN.md §5):

* elements live in immutable *record blocks* of at most ``record_capacity``
  sorted elements, each occupying one simulated disk block;
* a queue value is an immutable descriptor tree -- leaves reference record
  blocks through ``(block, offset, cap)`` views, inner nodes are
  concatenation nodes caching the minimum of their subtree;
* attrition never touches disk: truncating a queue below a value ``e``
  merely lowers the ``cap`` of one boundary leaf and drops whole subtrees
  whose cached minimum is >= ``e``;
* ``CatenateAndAttrite`` therefore costs zero block transfers,
  ``FindMin`` is answered from the cached minimum, ``DeleteMin`` reads each
  record block at most once across a run of consecutive deletions (O(1)
  worst case, O(1/b) amortized with the block cached), and
  ``InsertAndAttrite`` buffers up to ``record_capacity`` new elements in a
  pinned in-memory tail before writing one block (O(1/b) amortized writes).

All operations are *non-destructive*: they return new queue values that
share structure with their inputs, which is exactly the confluent
persistence the dynamic range-skyline structure of Section 4.2 requires.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.em.storage import StorageManager

Key = Any
Item = Tuple[Key, Any]

_INF = math.inf


# ----------------------------------------------------------------------
# Descriptor nodes (immutable, in-memory; record payloads live on disk)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _RecordLeaf:
    """A view ``block[offset:]`` restricted to keys strictly below ``cap``."""

    block_id: int
    offset: int
    cap: Key
    min_item: Item

    @property
    def min_key(self) -> Key:
        return self.min_item[0]


@dataclass(frozen=True)
class _MemLeaf:
    """A small run of elements that has not been written to disk yet."""

    items: Tuple[Item, ...]

    @property
    def min_item(self) -> Item:
        return self.items[0]

    @property
    def min_key(self) -> Key:
        return self.items[0][0]


@dataclass(frozen=True)
class _Concat:
    """Concatenation of two non-empty subqueues (left precedes right)."""

    left: "_Node"
    right: "_Node"

    @property
    def min_item(self) -> Item:
        return self.left.min_item

    @property
    def min_key(self) -> Key:
        return self.left.min_item[0]


_Node = Union[_RecordLeaf, _MemLeaf, _Concat]


class IOCPQA:
    """A persistent I/O-efficient catenable priority queue with attrition."""

    def __init__(
        self,
        storage: StorageManager,
        record_capacity: Optional[int] = None,
        _root: Optional[_Node] = None,
        _tail: Tuple[Item, ...] = (),
    ) -> None:
        self.storage = storage
        if record_capacity is not None and record_capacity < 1:
            raise ValueError("record_capacity must be >= 1")
        self.record_capacity = record_capacity or storage.block_size
        self._root = _root
        self._tail = _tail

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(
        cls, storage: StorageManager, record_capacity: Optional[int] = None
    ) -> "IOCPQA":
        """A fresh empty queue."""
        return cls(storage, record_capacity)

    @classmethod
    def build(
        cls,
        storage: StorageManager,
        items: Sequence[Item],
        record_capacity: Optional[int] = None,
    ) -> "IOCPQA":
        """Build a queue from elements given in insertion (queue) order.

        Attrition is applied exactly as if the elements had been inserted
        one by one; the surviving increasing run is packed into full record
        blocks, so the construction writes ``O(survivors / b)`` blocks.
        """
        queue = cls(storage, record_capacity)
        surviving: List[Item] = []
        for key, payload in items:
            cut = bisect.bisect_left([k for k, _ in surviving], key)
            del surviving[cut:]
            surviving.append((key, payload))
        return queue._from_sorted_run(surviving)

    @classmethod
    def build_in_memory(
        cls,
        storage: StorageManager,
        items: Sequence[Item],
        record_capacity: Optional[int] = None,
    ) -> "IOCPQA":
        """Build a *temporary* queue whose records stay in memory.

        Used for the per-query queues over the O(B) in-range points of the
        two boundary leaves in the dynamic top-open structure: those points
        were just read from the leaf block, so wrapping them costs no
        further I/O (the queue lives only for the duration of the query).
        """
        queue = cls(storage, record_capacity)
        surviving: List[Item] = []
        for key, payload in items:
            cut = bisect.bisect_left([k for k, _ in surviving], key)
            del surviving[cut:]
            surviving.append((key, payload))
        if not surviving:
            return queue
        root = _MemLeaf(tuple(surviving))
        return cls(storage, queue.record_capacity, _root=root, _tail=())

    def _from_sorted_run(self, run: List[Item]) -> "IOCPQA":
        if not run:
            return IOCPQA(self.storage, self.record_capacity)
        capacity = self.record_capacity
        leaves: List[_Node] = []
        for start in range(0, len(run), capacity):
            chunk = run[start : start + capacity]
            block_id = self.storage.create(list(chunk))
            leaves.append(
                _RecordLeaf(block_id=block_id, offset=0, cap=_INF, min_item=chunk[0])
            )
        root = _balanced_concat(leaves)
        return IOCPQA(self.storage, self.record_capacity, _root=root, _tail=())

    def _like(self, root: Optional[_Node], tail: Tuple[Item, ...]) -> "IOCPQA":
        return IOCPQA(self.storage, self.record_capacity, _root=root, _tail=tail)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """Whether no surviving element remains."""
        return self._root is None and not self._tail

    def find_min(self) -> Optional[Item]:
        """The minimum (key, payload) without removing it; ``None`` if empty."""
        if self._root is not None:
            return self._root.min_item
        if self._tail:
            return self._tail[0]
        return None

    def min_key(self) -> Optional[Key]:
        """The minimum key, or ``None`` when empty."""
        item = self.find_min()
        return item[0] if item is not None else None

    # ------------------------------------------------------------------
    # Updates (persistent: each returns a new queue)
    # ------------------------------------------------------------------
    def delete_min(self) -> Tuple[Optional[Item], "IOCPQA"]:
        """Remove the minimum; returns ``(item, new_queue)``.

        ``item`` is ``None`` when the queue was empty (and the queue is
        returned unchanged).
        """
        if self._root is not None:
            item, new_root = self._delete_min_node(self._root)
            return item, self._like(new_root, self._tail)
        if self._tail:
            return self._tail[0], self._like(None, self._tail[1:])
        return None, self

    def insert_and_attrite(self, key: Key, payload: Any = None) -> "IOCPQA":
        """Insert ``key`` and attrite every element >= ``key``."""
        tail = self._tail
        root = self._root
        if tail and key > tail[0][0]:
            # The whole on-disk part survives (its keys are < tail[0] < key).
            cut = bisect.bisect_left([k for k, _ in tail], key)
            tail = tail[:cut] + ((key, payload),)
        else:
            # The tail is wiped out; truncate the tree part.
            root = _truncate(root, key)
            tail = ((key, payload),)
        queue = self._like(root, tail)
        if len(tail) >= self.record_capacity:
            queue = queue._flush_tail()
        return queue

    def catenate_and_attrite(self, other: "IOCPQA") -> "IOCPQA":
        """``{e in self | e < min(other)} ++ other`` as a new queue."""
        other_min = other.min_key()
        if other_min is None:
            return self
        my_min = self.min_key()
        if my_min is None or my_min >= other_min:
            # Everything in this queue is attrited.
            return self._like(other._root, other._tail)
        root = self._root
        tail = self._tail
        if tail and tail[0][0] < other_min:
            cut = bisect.bisect_left([k for k, _ in tail], other_min)
            tail = tail[:cut]
        else:
            root = _truncate(root, other_min)
            tail = ()
        surviving_self = _concat_nodes(root, _MemLeaf(tail) if tail else None)
        combined = _concat_nodes(surviving_self, other._root)
        return self._like(combined, other._tail)

    def _flush_tail(self) -> "IOCPQA":
        """Write the in-memory tail out as a record block."""
        if not self._tail:
            return self
        block_id = self.storage.create(list(self._tail))
        leaf = _RecordLeaf(
            block_id=block_id, offset=0, cap=_INF, min_item=self._tail[0]
        )
        return self._like(_concat_nodes(self._root, leaf), ())

    # ------------------------------------------------------------------
    # Bulk helpers used by the range-skyline structures
    # ------------------------------------------------------------------
    def pop_while(
        self, predicate: Callable[[Key], bool], limit: Optional[int] = None
    ) -> Tuple[List[Item], "IOCPQA"]:
        """Repeatedly DeleteMin while ``predicate(min_key)`` holds.

        Returns the popped items (in increasing key order) and the remaining
        queue.  This is exactly the reporting loop of the dynamic top-open
        query (Section 4.2).
        """
        popped: List[Item] = []
        queue = self
        while True:
            if limit is not None and len(popped) >= limit:
                break
            head = queue.find_min()
            if head is None or not predicate(head[0]):
                break
            item, queue = queue.delete_min()
            assert item is not None
            popped.append(item)
        return popped, queue

    def items(self) -> List[Item]:
        """All surviving elements in increasing key order (reads every record)."""
        result: List[Item] = []
        if self._root is not None:
            self._collect(self._root, result)
        result.extend(self._tail)
        return result

    def keys(self) -> List[Key]:
        """All surviving keys in increasing order."""
        return [key for key, _ in self.items()]

    def __len__(self) -> int:
        return len(self.items())

    def reachable_record_blocks(self) -> set:
        """The set of record block ids referenced by this queue value.

        The paper's space bound counts blocks holding surviving elements;
        this is the corresponding quantity for the persistent representation
        (shared blocks are counted once).
        """
        blocks: set = set()
        if self._root is not None:
            _collect_blocks(self._root, blocks)
        return blocks

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _delete_min_node(
        self, node: _Node
    ) -> Tuple[Item, Optional[_Node]]:
        if isinstance(node, _Concat):
            item, new_left = self._delete_min_node(node.left)
            if new_left is None:
                return item, node.right
            return item, _Concat(left=new_left, right=node.right)
        if isinstance(node, _MemLeaf):
            item = node.items[0]
            rest = node.items[1:]
            return item, (_MemLeaf(rest) if rest else None)
        # _RecordLeaf: read its block (one I/O, then cached by the pool).
        records: List[Item] = self.storage.read(node.block_id)
        item = records[node.offset]
        next_offset = node.offset + 1
        if next_offset < len(records) and records[next_offset][0] < node.cap:
            new_leaf = _RecordLeaf(
                block_id=node.block_id,
                offset=next_offset,
                cap=node.cap,
                min_item=records[next_offset],
            )
            return item, new_leaf
        return item, None

    def _collect(self, node: _Node, out: List[Item]) -> None:
        if isinstance(node, _Concat):
            self._collect(node.left, out)
            self._collect(node.right, out)
            return
        if isinstance(node, _MemLeaf):
            out.extend(node.items)
            return
        records: List[Item] = self.storage.read(node.block_id)
        for item in records[node.offset :]:
            if item[0] >= node.cap:
                break
            out.append(item)


# ----------------------------------------------------------------------
# Node-level helpers
# ----------------------------------------------------------------------
def _truncate(node: Optional[_Node], threshold: Key) -> Optional[_Node]:
    """Remove every element with key >= ``threshold`` (lazy, zero I/O)."""
    if node is None:
        return None
    if node.min_key >= threshold:
        return None
    if isinstance(node, _Concat):
        if node.right.min_key >= threshold:
            return _truncate(node.left, threshold)
        truncated_right = _truncate(node.right, threshold)
        return _concat_nodes(node.left, truncated_right)
    if isinstance(node, _MemLeaf):
        keys = [k for k, _ in node.items]
        cut = bisect.bisect_left(keys, threshold)
        return _MemLeaf(node.items[:cut]) if cut else None
    new_cap = threshold if threshold < node.cap else node.cap
    return _RecordLeaf(
        block_id=node.block_id,
        offset=node.offset,
        cap=new_cap,
        min_item=node.min_item,
    )


def _concat_nodes(left: Optional[_Node], right: Optional[_Node]) -> Optional[_Node]:
    if left is None:
        return right
    if right is None:
        return left
    return _Concat(left=left, right=right)


def _balanced_concat(leaves: List[_Node]) -> Optional[_Node]:
    """A balanced concatenation tree over a list of leaves."""
    if not leaves:
        return None
    if len(leaves) == 1:
        return leaves[0]
    mid = len(leaves) // 2
    left = _balanced_concat(leaves[:mid])
    right = _balanced_concat(leaves[mid:])
    return _concat_nodes(left, right)


def _collect_blocks(node: _Node, out: set) -> None:
    if isinstance(node, _Concat):
        _collect_blocks(node.left, out)
        _collect_blocks(node.right, out)
    elif isinstance(node, _RecordLeaf):
        out.add(node.block_id)


def iterate_items(queue: IOCPQA) -> Iterator[Item]:
    """Convenience iterator over a queue's surviving elements."""
    return iter(queue.items())
