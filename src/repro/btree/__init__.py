"""External-memory B-tree substrate.

The structures of Sections 2-5 use B-trees in several roles: the range-max
B-tree of Theorem 1 (finding ``beta'``), the base trees of the dynamic
structures, and the generic dictionary every baseline needs.  All variants
store one node per simulated disk block, so searching a tree of ``n`` keys
costs ``O(log_B n)`` I/Os, matching the bounds the paper quotes.
"""

from repro.btree.btree import BTree
from repro.btree.rangemax import RangeMaxBTree
from repro.btree.bulk import bulk_load_sorted

__all__ = ["BTree", "RangeMaxBTree", "bulk_load_sorted"]
