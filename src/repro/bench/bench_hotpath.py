"""Wall-clock hot-path benchmarks: columnar kernels, pooled queue, shared reads.

Three cells, each timing a hot path twice -- the optimised implementation
against the reference it replaced -- while holding the repo's primary
currency (block transfers on the simulated machines) bit-identical
between the two sides.  Seconds are the headline here; the ledger
assertions exist to prove the speed came from execution strategy, not
from doing less simulated I/O:

1. **Columnar merge** (modes ``columnar-merge`` / ``object-merge``): the
   same candidate sources are merged by the vectorised kernels
   (:func:`repro.service.merge.merge_component_skylines` and
   :func:`~repro.service.merge.merge_shard_skylines`) and by the
   per-object reference sweeps (``*_objects``).  Answers must be
   identical; neither side may touch any simulated machine (the kernels
   run over resident candidates, so the cell asserts a zero block delta
   on a live engine while the timing loops run -- see DESIGN.md,
   "Columnar kernels and the charging boundary").  The acceptance claim
   is a >= 2x wall-clock speedup for the columnar side.

2. **Pooled queue** (modes ``pooled-queue`` / ``heapq``): the same
   multiway run merge (:func:`repro.em.sorting._merge_runs`) is driven
   once by the pooled :class:`repro.core.pqueue.SkipListPQ` and once by
   the ``heapq`` adapter.  Output record order and the full storage
   ledger (reads, writes, totals) must be bit-identical; seconds are
   reported honestly for both (the C-implemented ``heapq`` is a strong
   opponent -- the pooled queue's claim is allocation-free steady state,
   not a guaranteed win, so no speedup is asserted here).

3. **Snapshot-concurrent reads** (modes ``serial-reads`` /
   ``concurrent-reads``): identical closed-loop multi-client runs of
   *distinct* fresh-consistency rectangles against two identically built
   engines -- once with the classic serial read discipline
   (``read_concurrency=1``) and once with read batches pipelined on the
   server's read/write gate (``read_concurrency=4``).  Every rectangle's
   answer must match between the modes and the two engines' block
   ledgers must agree exactly; the claim is aggregate read throughput
   strictly above the serial run's.

Every cell asserts the engine ledger partition
``attributed + maintenance == total - build`` on the engine(s) it ran.
``benchmarks/bench_hotpath.py`` drives the sweep (pytest or ``--quick``)
and persists the table to ``BENCH_hotpath.json``.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Sequence, Tuple

from repro.bench.reporting import BenchmarkTable
from repro.core.columns import PointColumns, backend_name
from repro.core.point import Point
from repro.core.pqueue import HeapQueue, SkipListPQ
from repro.core.queries import RangeQuery
from repro.em.config import EMConfig
from repro.em.file import EMFile
from repro.em.sorting import _merge_runs
from repro.em.storage import StorageManager
from repro.engine import QueryRequest, SkylineEngine
from repro.serve import ServerConfig, SkylineServer
from repro.service.merge import (
    merge_component_skylines,
    merge_component_skylines_objects,
    merge_shard_skylines,
    merge_shard_skylines_objects,
)
from repro.workloads import uniform_points

Summary = Dict[str, Dict[str, float]]

UNIVERSE = 1_000_000


def _canon(points: Sequence[Point]) -> List[Tuple[float, float, object]]:
    return sorted((p.x, p.y, p.ident) for p in points)


def _ledger_ok(engine: SkylineEngine) -> bool:
    return (
        engine.attributed_io() + engine.maintenance_io()
        == engine.io_total() - engine.build_io
    )


# ----------------------------------------------------------------------
# Cell 1: columnar vs object merge kernels
# ----------------------------------------------------------------------
def run_merge_cell(
    n: int = 120_000,
    source_count: int = 6,
    repeats: int = 5,
    engine_n: int = 4096,
    seed: int = 0,
) -> Summary:
    """Time the columnar merge kernels against the object references.

    The candidate sources mimic what the service's read path hands the
    kernels: ``source_count`` overlapping increasing-x candidate sets for
    the component merge, and an x-disjoint partition of per-shard
    skylines for the shard merge.  A live engine runs real queries first
    (its production path uses the same kernels), then stands witness
    that the timing loops charge nothing.
    """
    rng = random.Random(seed)
    points = uniform_points(n, universe=UNIVERSE, seed=seed)

    # Overlapping component-style sources, each sorted by increasing x.
    assignments: List[List[Point]] = [[] for _ in range(source_count)]
    for point in points:
        assignments[rng.randrange(source_count)].append(point)
    object_sources = [
        sorted(source, key=lambda p: p.x) for source in assignments
    ]
    columnar_sources = [
        PointColumns.from_points(source) for source in object_sources
    ]

    # X-disjoint per-shard skylines for the shard merge (a single-source
    # object merge is exactly "compute this source's skyline").
    ordered = sorted(points, key=lambda p: p.x)
    band = max(1, len(ordered) // source_count)
    per_shard = [
        merge_component_skylines_objects(
            [ordered[i * band : (i + 1) * band]]
        )
        for i in range(source_count)
    ]
    per_shard = [shard for shard in per_shard if shard]

    engine = SkylineEngine.sharded(
        points[:engine_n], shard_count=4, block_size=16, memory_blocks=8
    )
    for i in range(8):
        width = UNIVERSE * 0.1
        x_lo = (i / 8.0) * (UNIVERSE - width)
        engine.query(RangeQuery(x_lo=x_lo, x_hi=x_lo + width))

    columnar_answer = merge_component_skylines(columnar_sources)
    object_answer = merge_component_skylines_objects(object_sources)
    if _canon(columnar_answer) != _canon(object_answer):
        raise AssertionError("columnar and object component merges diverge")
    if _canon(merge_shard_skylines(per_shard)) != _canon(
        merge_shard_skylines_objects(per_shard)
    ):
        raise AssertionError("columnar and object shard merges diverge")

    io_before = engine.io_total()
    started = time.perf_counter()
    for _ in range(repeats):
        merge_component_skylines(columnar_sources)
        merge_shard_skylines(per_shard)
    columnar_s = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(repeats):
        merge_component_skylines_objects(object_sources)
        merge_shard_skylines_objects(per_shard)
    object_s = time.perf_counter() - started
    kernel_blocks = engine.io_total() - io_before

    def cell(seconds: float) -> Dict[str, float]:
        return {
            "candidates": float(n),
            "sources": float(source_count),
            "repeats": float(repeats),
            "skyline_size": float(len(columnar_answer)),
            "seconds": round(seconds, 6),
            "blocks": float(kernel_blocks),
            "ledger_ok": 1.0 if _ledger_ok(engine) else 0.0,
        }

    return {
        "columnar-merge": cell(columnar_s),
        "object-merge": cell(object_s),
    }


# ----------------------------------------------------------------------
# Cell 2: pooled skip-list queue vs heapq on the multiway merge
# ----------------------------------------------------------------------
def run_queue_cell(
    n_records: int = 40_000,
    run_count: int = 12,
    block_size: int = 64,
    memory_blocks: int = 16,
    seed: int = 0,
) -> Summary:
    """Merge identical sorted runs with each queue; ledgers must match.

    The records are the engine's own points keyed by x -- the same
    engine then asserts the partition identity for the cell.
    """
    engine = SkylineEngine.sharded(
        uniform_points(2048, universe=UNIVERSE, seed=seed),
        shard_count=4,
        block_size=16,
        memory_blocks=8,
    )
    engine.query(RangeQuery(x_lo=0.0, x_hi=UNIVERSE / 2))

    rng = random.Random(seed + 1)
    records = [rng.random() for _ in range(n_records)]
    chunk = max(1, n_records // run_count)
    sorted_chunks = [
        sorted(records[i : i + chunk]) for i in range(0, n_records, chunk)
    ]

    summary: Summary = {}
    outputs: Dict[str, List[float]] = {}
    ledgers: Dict[str, Tuple[int, int, int]] = {}
    for mode, queue_type in (
        ("pooled-queue", SkipListPQ),
        ("heapq", HeapQueue),
    ):
        storage = StorageManager(
            EMConfig(block_size=block_size, memory_blocks=memory_blocks)
        )
        runs = [
            EMFile.from_records(storage, chunk_records, name=f"run{i}")
            for i, chunk_records in enumerate(sorted_chunks)
        ]
        before = storage.snapshot()
        started = time.perf_counter()
        merged = _merge_runs(
            storage, runs, key=lambda r: r, queue_type=queue_type
        )
        seconds = time.perf_counter() - started
        delta = storage.snapshot() - before
        outputs[mode] = list(merged.scan())
        ledgers[mode] = (delta.reads, delta.writes, delta.reads + delta.writes)
        summary[mode] = {
            "records": float(n_records),
            "runs": float(len(sorted_chunks)),
            "seconds": round(seconds, 6),
            "blocks": float(delta.reads + delta.writes),
            "reads": float(delta.reads),
            "writes": float(delta.writes),
            "ledger_ok": 1.0 if _ledger_ok(engine) else 0.0,
        }
    if outputs["pooled-queue"] != outputs["heapq"]:
        raise AssertionError("queue implementations merged different orders")
    if ledgers["pooled-queue"] != ledgers["heapq"]:
        raise AssertionError(
            f"queue ledgers diverge: {ledgers['pooled-queue']} vs "
            f"{ledgers['heapq']}"
        )
    return summary


# ----------------------------------------------------------------------
# Cell 3: serial vs snapshot-concurrent read batches
# ----------------------------------------------------------------------
def _distinct_bands(count: int, seed: int) -> List[RangeQuery]:
    """``count`` pairwise-disjoint x-bands covering the universe.

    Distinct rectangles keep coalescing out of the comparison, and
    disjoint bands with a small buffer pool make each query's block
    charges independent of execution order -- which is what lets the
    serial and concurrent ledgers be compared bit-for-bit.
    """
    width = UNIVERSE / count
    rects = [
        RangeQuery(x_lo=i * width, x_hi=(i + 1) * width - 1e-9)
        for i in range(count)
    ]
    random.Random(seed).shuffle(rects)
    return rects


def run_serving_cell(
    n: int = 8192,
    clients: int = 8,
    requests_per_client: int = 24,
    read_concurrency: int = 4,
    gather_window: float = 0.008,
    max_batch: int = 32,
    seed: int = 0,
) -> Summary:
    """Closed-loop distinct-rectangle reads, serial vs concurrent batches."""
    base = uniform_points(n, universe=UNIVERSE, seed=seed)
    rects = _distinct_bands(clients * requests_per_client, seed + 1)
    sequences = [
        rects[cid * requests_per_client : (cid + 1) * requests_per_client]
        for cid in range(clients)
    ]

    summary: Summary = {}
    answers: Dict[str, Dict[Tuple[float, float], List[Tuple]]] = {}
    totals: Dict[str, Tuple[int, int, int]] = {}
    for mode, concurrency in (
        ("serial-reads", 1),
        ("concurrent-reads", read_concurrency),
    ):
        engine = SkylineEngine.sharded(
            base,
            shard_count=4,
            block_size=16,
            memory_blocks=8,
            cache_capacity=0,
        )
        io_before = engine.io_total()
        collected: Dict[Tuple[float, float], List[Tuple]] = {}
        lock = threading.Lock()

        def client_loop(server: SkylineServer, cid: int) -> None:
            # Each client keeps two requests outstanding (a 2-deep
            # pipeline): the serial discipline still pays the gather
            # window *plus* execution per batch, while the concurrent
            # mode can gather the pending requests during execution.
            # Keeping clients * depth below max_batch means the window
            # -- not the batch cap -- bounds every gather, in both modes.
            local = {}
            pending = []
            for rect in sequences[cid]:
                pending.append(
                    (
                        rect,
                        server.submit_query(
                            QueryRequest(rect=rect, consistency="fresh")
                        ),
                    )
                )
                if len(pending) >= 2:
                    rect_done, future = pending.pop(0)
                    answer = _canon(future.result(timeout=120.0).points)
                    local[(rect_done.x_lo, rect_done.x_hi)] = answer
            for rect_done, future in pending:
                answer = _canon(future.result(timeout=120.0).points)
                local[(rect_done.x_lo, rect_done.x_hi)] = answer
            with lock:
                collected.update(local)

        config = ServerConfig(
            gather_window=gather_window,
            max_batch=max_batch,
            read_concurrency=concurrency,
        )
        started = time.perf_counter()
        with SkylineServer(engine, config) as server:
            threads = [
                threading.Thread(target=client_loop, args=(server, cid))
                for cid in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            metrics = server.metrics.describe()
            status = server.describe()
        elapsed = time.perf_counter() - started
        answers[mode] = collected
        totals[mode] = (
            engine.io_total() - io_before,
            engine.attributed_io(),
            engine.maintenance_io(),
        )
        summary[mode] = {
            "submitted": float(clients * requests_per_client),
            "served": float(metrics["served"]),
            "read_concurrency": float(status["server"]["read_concurrency"]),
            "read_batches": float(metrics["read_batches"]),
            "seconds": round(elapsed, 6),
            "throughput_rps": round(
                metrics["served"] / max(1e-9, elapsed), 1
            ),
            "blocks": float(engine.io_total() - io_before),
            "attributed_io": float(engine.attributed_io()),
            "maintenance_io": float(engine.maintenance_io()),
            "ledger_ok": 1.0 if _ledger_ok(engine) else 0.0,
        }
    if answers["serial-reads"] != answers["concurrent-reads"]:
        raise AssertionError("serial and concurrent answers diverge")
    if totals["serial-reads"] != totals["concurrent-reads"]:
        raise AssertionError(
            f"serial and concurrent ledgers diverge: "
            f"{totals['serial-reads']} vs {totals['concurrent-reads']}"
        )
    return summary


# ----------------------------------------------------------------------
# Sweep + assertions
# ----------------------------------------------------------------------
def run_hotpath_sweep(
    merge_n: int = 120_000,
    merge_repeats: int = 5,
    queue_records: int = 40_000,
    serving_n: int = 8192,
    clients: int = 8,
    requests_per_client: int = 24,
    seed: int = 0,
) -> Tuple[BenchmarkTable, Summary]:
    """The three hot-path cells; see the module docstring for the claims."""
    summary: Summary = {}
    summary.update(
        run_merge_cell(n=merge_n, repeats=merge_repeats, seed=seed)
    )
    summary.update(run_queue_cell(n_records=queue_records, seed=seed))
    summary.update(
        run_serving_cell(
            n=serving_n,
            clients=clients,
            requests_per_client=requests_per_client,
            seed=seed,
        )
    )

    table = BenchmarkTable(
        f"Hot path -- columnar backend={backend_name()}, merge "
        f"n={merge_n}, queue n={queue_records}, serving {clients} clients "
        f"x {requests_per_client} distinct rectangles"
    )
    for mode in (
        "columnar-merge",
        "object-merge",
        "pooled-queue",
        "heapq",
        "serial-reads",
        "concurrent-reads",
    ):
        cell = summary[mode]
        table.add(
            measured_io=cell["blocks"],
            seconds=cell["seconds"],
            mode=mode,
            throughput_rps=cell.get("throughput_rps", 0.0),
            ledger_ok=cell["ledger_ok"],
        )
    return table, summary


def check(summary: Summary) -> None:
    """The acceptance assertions both pytest and the CLI enforce."""
    for mode, cell in summary.items():
        assert cell["ledger_ok"] == 1.0, (
            f"ledger partition broke in the {mode} cell"
        )
    columnar = summary["columnar-merge"]
    objects = summary["object-merge"]
    # The merge kernels are pure in-memory compute: zero transfers.
    assert columnar["blocks"] == objects["blocks"] == 0.0
    speedup = objects["seconds"] / max(1e-9, columnar["seconds"])
    assert speedup >= 2.0, (
        f"columnar merge speedup {speedup:.2f}x is below the 2x claim "
        f"({objects['seconds']:.4f}s vs {columnar['seconds']:.4f}s)"
    )
    pooled = summary["pooled-queue"]
    heap = summary["heapq"]
    # Same merge, same machine model: the ledgers must agree exactly.
    assert (pooled["reads"], pooled["writes"]) == (
        heap["reads"],
        heap["writes"],
    )
    assert pooled["blocks"] > 0, "the queue cell merged nothing"
    serial = summary["serial-reads"]
    concurrent = summary["concurrent-reads"]
    assert serial["served"] == serial["submitted"]
    assert concurrent["served"] == concurrent["submitted"]
    assert concurrent["read_concurrency"] > 1.0, (
        "the concurrent mode silently degraded to the serial discipline"
    )
    assert concurrent["blocks"] == serial["blocks"], (
        "snapshot-concurrent execution changed the block ledger"
    )
    assert concurrent["throughput_rps"] > serial["throughput_rps"], (
        f"concurrent read batches were not faster: "
        f"{concurrent['throughput_rps']} vs {serial['throughput_rps']} rps"
    )
