"""Tests for the internal-memory PQA oracle (Sundar)."""

from repro.pqa import SundarPQA


def test_empty_queue():
    queue = SundarPQA()
    assert queue.is_empty()
    assert queue.find_min() is None
    assert queue.delete_min() is None
    assert queue.keys() == []


def test_insert_and_attrite_removes_larger_elements():
    queue = SundarPQA()
    for value in [5, 3, 8, 2, 7]:
        queue.insert_and_attrite(value, payload=str(value))
    # 5 kills nothing; 3 kills 5; 8 survives; 2 kills 3 and 8; 7 survives.
    assert queue.keys() == [2, 7]
    assert queue.items() == [(2, "2"), (7, "7")]


def test_delete_min_returns_increasing_sequence():
    queue = SundarPQA()
    for value in [9, 4, 6, 1, 5, 8]:
        queue.insert_and_attrite(value)
    drained = []
    while not queue.is_empty():
        drained.append(queue.delete_min()[0])
    assert drained == sorted(drained)


def test_catenate_and_attrite_semantics():
    first = SundarPQA([(1, None), (4, None), (9, None)])
    second = SundarPQA([(5, None), (7, None)])
    first.catenate_and_attrite(second)
    assert first.keys() == [1, 4, 5, 7]
    assert second.is_empty()

    # The whole first queue can be attrited.
    first = SundarPQA([(5, None), (6, None)])
    second = SundarPQA([(2, None), (3, None)])
    first.catenate_and_attrite(second)
    assert first.keys() == [2, 3]


def test_catenate_with_empty_other_is_noop():
    first = SundarPQA([(1, None), (2, None)])
    first.catenate_and_attrite(SundarPQA())
    assert first.keys() == [1, 2]


def test_content_is_always_increasing():
    import random

    rng = random.Random(0)
    queue = SundarPQA()
    for _ in range(500):
        queue.insert_and_attrite(rng.random())
        keys = queue.keys()
        assert keys == sorted(keys)
