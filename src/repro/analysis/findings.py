"""The shared finding record and file-walking helpers of the lint passes."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Tuple


@dataclass(frozen=True)
class Finding:
    """One lint violation: where it is, which rule fired, and why."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Stable presentation order: by path, then line, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def iter_python_files(root: Path) -> Iterator[Path]:
    """Every ``*.py`` file under ``root`` (or ``root`` itself if a file),
    in sorted order for deterministic reports."""
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    yield from sorted(root.rglob("*.py"))


def read_sources(roots: List[Path]) -> List[Tuple[Path, str]]:
    """Load every Python file under the given roots exactly once."""
    seen: Dict[Path, str] = {}
    for root in roots:
        for path in iter_python_files(root):
            resolved = path.resolve()
            if resolved not in seen:
                seen[resolved] = resolved.read_text(encoding="utf-8")
    return sorted(seen.items(), key=lambda item: str(item[0]))
