"""Node and entry payloads of the multiversion B-tree."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List

INF = math.inf


@dataclass
class MVEntry:
    """A versioned entry.

    For leaf nodes ``value`` is the stored payload (a segment); for internal
    nodes it is the block id of a child.  The entry is *live* during the
    half-open version interval ``[start, end)``; ``end = inf`` means it has
    not been (logically) deleted yet.
    """

    key: Any
    start: float
    end: float = INF
    value: Any = None

    def alive_at(self, version: float) -> bool:
        """Whether the entry belongs to the snapshot of ``version``."""
        return self.start <= version < self.end

    @property
    def alive_now(self) -> bool:
        """Whether the entry is live in the current (latest) version."""
        return self.end == INF


@dataclass
class MVNode:
    """One block of the multiversion B-tree (leaf or internal)."""

    is_leaf: bool
    entries: List[MVEntry] = field(default_factory=list)

    def record_size(self) -> int:
        """Size in records (one per entry)."""
        return max(1, len(self.entries))

    def live_entries(self, version: float = INF) -> List[MVEntry]:
        """Entries alive at ``version`` (current version by default)."""
        if version == INF:
            return [entry for entry in self.entries if entry.alive_now]
        return [entry for entry in self.entries if entry.alive_at(version)]

    def live_count(self) -> int:
        """Number of currently live entries."""
        return sum(1 for entry in self.entries if entry.alive_now)

    def __len__(self) -> int:
        return len(self.entries)
