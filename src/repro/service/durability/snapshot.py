"""Block-level shard snapshots: serialisation and recovery loading.

At a compaction checkpoint the freshly rebuilt shards hold the whole live
point set (the delta is empty), so persisting them is a pure sequential
write: each shard's x-sorted points go out in blocks of at most ``B``
records -- ``ceil(n_shard / B)`` charged writes per shard, ``ceil(n / B)``
in total, the same ``O(n/B)`` linear-space discipline the paper's static
constructions obey.  A :class:`SnapshotManifest` (one more block) names the
point blocks, the shard boundaries and epochs, and the WAL LSN up to which
the log is folded into the snapshot.

Recovery (:func:`load_snapshot`) is the mirror image: one read for the
manifest block plus one read per point block, after which only the WAL
suffix past ``folded_lsn`` needs replaying.  Recovery therefore costs
``O(n/B + w/B)`` block transfers where ``w`` is the number of WAL records
since the last installed snapshot -- the quantity
``snapshot_every_compactions`` trades against snapshot write volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.point import Point
from repro.em.disk import BlockId
from repro.service.durability.store import DurableStore


@dataclass(frozen=True)
class SnapshotManifest:
    """The durable root of one snapshot: where the points are, what is folded.

    ``folded_lsn`` is the LSN of the compaction record this snapshot is
    anchored to (0 for the baseline snapshot written at service birth):
    every WAL record with a smaller-or-equal LSN is already reflected in the
    point blocks.  ``installed_lsn`` is the LSN whose durability makes this
    manifest visible to recovery -- the crash simulator drops manifests whose
    anchor record did not survive.  ``block_id`` is the manifest's own block,
    set when the store installs it.  ``point_count`` is verified against the
    loaded points by :func:`load_snapshot`; ``cuts`` records the shard
    layout the snapshot was taken under for dashboards and forensics only
    -- recovery deliberately re-cuts by size (it may be opened with a
    different ``shard_count``), so the recorded cuts are never restored.
    """

    generation: int
    folded_lsn: int
    installed_lsn: int
    cuts: Tuple[float, ...]
    shard_blocks: Tuple[Tuple[BlockId, ...], ...]
    point_count: int
    block_id: Optional[BlockId] = None

    @property
    def block_count(self) -> int:
        """Blocks this snapshot occupies: point blocks plus the manifest."""
        return sum(len(blocks) for blocks in self.shard_blocks) + 1

    def record_size(self) -> int:
        """The manifest is directory metadata; it fits one block slot."""
        return 1


def write_snapshot_blocks(
    store: DurableStore, shard_points: Sequence[Sequence[Point]]
) -> Tuple[Tuple[Tuple[BlockId, ...], ...], int]:
    """Serialise every shard's points to the store in blocks of ``<= B``.

    Returns ``(per-shard block-id tuples, total point count)``; each block
    costs one charged write on the store's ledger.  The caller anchors the
    result by installing a :class:`SnapshotManifest` *after* the WAL commit
    record is durable, so a crash between the two leaves only unreachable
    (harmless) blocks behind.
    """
    all_blocks: List[Tuple[BlockId, ...]] = []
    total = 0
    B = store.block_size
    for points in shard_points:
        ordered = list(points)
        shard_ids: List[BlockId] = []
        for start in range(0, len(ordered), B):
            shard_ids.append(store.storage.create(ordered[start : start + B]))
        all_blocks.append(tuple(shard_ids))
        total += len(ordered)
    return tuple(all_blocks), total


def load_snapshot(store: DurableStore, manifest: SnapshotManifest) -> List[Point]:
    """Read a snapshot's points back: one read for the manifest block plus
    one per point block, all charged to the store's ledger."""
    if manifest.block_id is not None:
        stored = store.storage.read(manifest.block_id)
        if stored.folded_lsn != manifest.folded_lsn:  # pragma: no cover
            raise RuntimeError("manifest block does not match the chain entry")
    points: List[Point] = []
    for shard_ids in manifest.shard_blocks:
        for block_id in shard_ids:
            points.extend(store.storage.read(block_id))
    if len(points) != manifest.point_count:
        raise RuntimeError(
            f"snapshot corrupt: manifest promises {manifest.point_count} "
            f"points, blocks held {len(points)}"
        )
    return points
