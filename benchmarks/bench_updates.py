"""Update path: leveled incremental merges vs stop-the-world compaction.

Claims (ISSUE 4 acceptance):

* the **max single-update I/O spike** of the leveled path is at least
  10x below the legacy threshold-compact path's ``O(n/B)`` rebuild at
  the n = 50k mixed read/write workload (bounded by
  ``merge_step_blocks`` regardless of n);
* **mean query I/O** of the leveled path stays within 1.5x of the
  legacy path (the level fan-out is cheap next to the base shards);
* the **ledger partition** ``attributed + maintenance == total - build``
  holds on every bench cell.

Run under pytest (full sweep) or standalone::

    PYTHONPATH=src python benchmarks/bench_updates.py [--quick]

Both modes persist the comparison table to ``BENCH_updates.json``
(schema v1, see :func:`repro.bench.reporting.write_json_report`); the
quick mode still includes the n = 50k cell the acceptance criterion is
stated against, just with fewer interleaved probes.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.bench.bench_updates import check, run_update_path_sweep
from repro.bench.reporting import write_json_report

JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_updates.json"

QUICK = dict(ns=(50_000,), updates=192, query_every=16)
FULL = dict(ns=(10_000, 50_000), updates=256, query_every=8)


def run_sweeps(quick: bool = False):
    params = QUICK if quick else FULL
    table, summary = run_update_path_sweep(**params)
    write_json_report(
        [table],
        str(JSON_PATH),
        meta={
            "experiment": "update_path_leveled_vs_threshold_compact",
            "quick": quick,
            "summary": summary,
        },
    )
    return table, summary


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
import pytest  # noqa: E402


@pytest.fixture(scope="module")
def sweeps():
    return run_sweeps(quick=False)


def test_leveled_update_path_beats_threshold_compact(sweeps, capsys):
    table, summary = sweeps
    with capsys.disabled():
        table.show()
        print(f"\nwrote {JSON_PATH.name}")
    check(summary)


def test_json_report_written(sweeps):
    import json

    payload = json.loads(JSON_PATH.read_text())
    assert payload["schema"] == 1
    assert (
        payload["meta"]["experiment"]
        == "update_path_leveled_vs_threshold_compact"
    )
    assert payload["tables"]


# ----------------------------------------------------------------------
# CLI entry point (CI smoke run: --quick)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="n=50k cell only, fewer probes (same assertions)",
    )
    args = parser.parse_args(argv)
    table, summary = run_sweeps(quick=args.quick)
    table.show()
    check(summary)
    print(f"\nok -- wrote {JSON_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
