"""LRU buffer pool with pinning on top of a :class:`~repro.em.disk.DiskModel`.

Several of the paper's bounds (notably the amortized ``O(1/B)`` cost of the
I/O-CPQA, Theorem 3) require that a constant number of blocks -- the
"critical records" -- stay pinned in main memory.  The buffer pool provides
exactly that facility: pinned blocks never leave memory and accessing them
again is free, while unpinned blocks are evicted in LRU order once the pool
exceeds ``memory_blocks`` frames.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.em.disk import BlockId, DiskModel


class BufferPoolError(RuntimeError):
    """Raised on misuse of the buffer pool (e.g. unpinning a free block)."""


@dataclass
class _Frame:
    payload: Any
    dirty: bool = False
    pin_count: int = 0


class BufferPool:
    """A bounded write-back cache of disk blocks.

    Parameters
    ----------
    disk:
        The underlying simulated disk.
    capacity_blocks:
        Number of frames; defaults to the disk configuration's
        ``memory_blocks``.
    """

    def __init__(self, disk: DiskModel, capacity_blocks: Optional[int] = None) -> None:
        self.disk = disk
        self.capacity_blocks = capacity_blocks or disk.config.memory_blocks
        if self.capacity_blocks < 1:
            raise ValueError("buffer pool needs at least one frame")
        self._frames: "OrderedDict[BlockId, _Frame]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Core access path
    # ------------------------------------------------------------------
    def get(self, block_id: BlockId) -> Any:
        """Return the payload of ``block_id``, reading from disk on a miss."""
        frame = self._frames.get(block_id)
        if frame is not None:
            self.hits += 1
            self._frames.move_to_end(block_id)
            return frame.payload
        self.misses += 1
        payload = self.disk.read_block(block_id)
        self._admit(block_id, _Frame(payload=payload))
        return payload

    def put(self, block_id: BlockId, payload: Any, write_through: bool = False) -> None:
        """Install a new payload for ``block_id`` in the cache.

        With ``write_through`` the block is written to disk immediately;
        otherwise it is marked dirty and written back on eviction or flush.
        """
        if not self.disk.is_allocated(block_id):
            raise BufferPoolError(f"block {block_id} is not allocated")
        frame = self._frames.get(block_id)
        if frame is None:
            frame = _Frame(payload=payload, dirty=not write_through)
            self._admit(block_id, frame)
        else:
            frame.payload = payload
            frame.dirty = not write_through
            self._frames.move_to_end(block_id)
        if write_through:
            self.disk.write_block(block_id, payload)

    def create(self, payload: Any) -> BlockId:
        """Allocate a fresh block on disk and cache ``payload`` for it (dirty)."""
        block_id = self.disk.allocate()
        self.put(block_id, payload)
        return block_id

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def pin(self, block_id: BlockId) -> Any:
        """Pin a block in memory and return its payload.

        Pinned blocks are exempt from eviction; subsequent :meth:`get` calls
        on them are cache hits and therefore free in the I/O model.
        """
        payload = self.get(block_id)
        self._frames[block_id].pin_count += 1
        return payload

    def unpin(self, block_id: BlockId) -> None:
        """Drop one pin from a previously pinned block."""
        frame = self._frames.get(block_id)
        if frame is None or frame.pin_count <= 0:
            raise BufferPoolError(f"block {block_id} is not pinned")
        frame.pin_count -= 1

    def pinned_blocks(self) -> Dict[BlockId, int]:
        """Mapping of pinned block ids to their pin counts."""
        return {
            block_id: frame.pin_count
            for block_id, frame in self._frames.items()
            if frame.pin_count > 0
        }

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush(self, block_id: Optional[BlockId] = None) -> None:
        """Write dirty frames back to disk (all of them when no id is given)."""
        if block_id is not None:
            frame = self._frames.get(block_id)
            if frame is not None and frame.dirty:
                self.disk.write_block(block_id, frame.payload)
                frame.dirty = False
            return
        for bid, frame in self._frames.items():
            if frame.dirty:
                self.disk.write_block(bid, frame.payload)
                frame.dirty = False

    def evict_all(self) -> None:
        """Flush and drop every unpinned frame (e.g. between experiments)."""
        self.flush()
        self._frames = OrderedDict(
            (bid, frame) for bid, frame in self._frames.items() if frame.pin_count > 0
        )

    def invalidate(self, block_id: BlockId) -> None:
        """Drop a frame without writing it back (used after freeing a block)."""
        self._frames.pop(block_id, None)

    def contains(self, block_id: BlockId) -> bool:
        """Whether ``block_id`` is currently resident in the pool."""
        return block_id in self._frames

    def resident_count(self) -> int:
        """Number of frames currently held."""
        return len(self._frames)

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from memory."""
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _admit(self, block_id: BlockId, frame: _Frame) -> None:
        self._frames[block_id] = frame
        self._frames.move_to_end(block_id)
        self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        while len(self._frames) > self.capacity_blocks:
            victim_id = self._pick_victim()
            if victim_id is None:
                # Everything is pinned; allow the pool to grow.  The paper's
                # structures pin only O(1) blocks, so this indicates a
                # configuration (not a correctness) problem.
                return
            frame = self._frames.pop(victim_id)
            if frame.dirty:
                self.disk.write_block(victim_id, frame.payload)

    def _pick_victim(self) -> Optional[BlockId]:
        for block_id, frame in self._frames.items():
            if frame.pin_count == 0:
                return block_id
        return None
