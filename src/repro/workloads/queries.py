"""Query-workload generators matched to the query variants of Figure 2."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core.point import Point
from repro.core.queries import AntiDominanceQuery, FourSidedQuery, TopOpenQuery


def _extent(points: Sequence[Point]) -> tuple:
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return min(xs), max(xs), min(ys), max(ys)


def top_open_queries(
    points: Sequence[Point],
    count: int,
    selectivity: float = 0.2,
    seed: Optional[int] = None,
) -> List[TopOpenQuery]:
    """Top-open rectangles whose x-extent covers ~``selectivity`` of the data."""
    rng = random.Random(seed)
    x_lo, x_hi, y_lo, y_hi = _extent(points)
    width = (x_hi - x_lo) * selectivity
    queries = []
    for _ in range(count):
        start = rng.uniform(x_lo, max(x_lo, x_hi - width))
        beta = rng.uniform(y_lo, y_hi)
        queries.append(TopOpenQuery(start, start + width, beta))
    return queries


def four_sided_queries(
    points: Sequence[Point],
    count: int,
    selectivity: float = 0.2,
    seed: Optional[int] = None,
) -> List[FourSidedQuery]:
    """Fully bounded rectangles covering ~``selectivity`` of each dimension."""
    rng = random.Random(seed)
    x_lo, x_hi, y_lo, y_hi = _extent(points)
    width = (x_hi - x_lo) * selectivity
    height = (y_hi - y_lo) * selectivity
    queries = []
    for _ in range(count):
        sx = rng.uniform(x_lo, max(x_lo, x_hi - width))
        sy = rng.uniform(y_lo, max(y_lo, y_hi - height))
        queries.append(FourSidedQuery(sx, sx + width, sy, sy + height))
    return queries


def anti_dominance_queries(
    points: Sequence[Point], count: int, seed: Optional[int] = None
) -> List[AntiDominanceQuery]:
    """Anti-dominance (lower-left quadrant) queries anchored at random points."""
    rng = random.Random(seed)
    anchors = [points[rng.randrange(len(points))] for _ in range(count)]
    return [AntiDominanceQuery(anchor.x, anchor.y) for anchor in anchors]
