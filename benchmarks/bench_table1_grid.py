"""Table 1, row 2 / Corollary 1: top-open queries on a U x U grid.

Claim: O(n/B) space and O(log log_B U + k/B) query I/Os.  The sweep grows
the universe U for a fixed n; the measured cost should grow (at most) like
log log_B U, i.e. extremely slowly, and stay far below the log_B n cost of
the indivisible structure.
"""

from __future__ import annotations

import pytest

from repro.bench import BenchmarkTable, measure_queries
from repro.bench.harness import make_storage
from repro.structures.grid_topopen import GridTopOpenStructure, grid_query_bound
from repro.structures.topopen_static import StaticTopOpenStructure
from repro.workloads import top_open_queries, uniform_points

BLOCK_SIZE = 64
N = 2048
SWEEP_U = [1 << 12, 1 << 16, 1 << 20, 1 << 24]
QUERIES = 10


def run_sweep() -> BenchmarkTable:
    table = BenchmarkTable("Table 1 row 2 -- top-open in the grid universe [U]^2")
    for universe in SWEEP_U:
        storage = make_storage(block_size=BLOCK_SIZE)
        points = uniform_points(N, universe=universe, seed=universe % 100003)
        points = [p for p in points]
        structure = GridTopOpenStructure(storage, points, universe=universe)
        queries = top_open_queries(points, QUERIES, selectivity=0.3, seed=1)
        io_per_query, avg_k = measure_queries(storage, structure, queries)

        # Reference: the indivisible R^2 structure on the same input.
        ref_storage = make_storage(block_size=BLOCK_SIZE)
        reference = StaticTopOpenStructure(ref_storage, points)
        ref_io, _ = measure_queries(ref_storage, reference, queries)

        table.add(
            measured_io=io_per_query,
            predicted=grid_query_bound(universe, int(avg_k), BLOCK_SIZE),
            n=N,
            U=universe,
            B=BLOCK_SIZE,
            avg_k=round(avg_k, 1),
            r2_structure_io=round(ref_io, 2),
        )
    return table


@pytest.fixture(scope="module")
def sweep_table() -> BenchmarkTable:
    return run_sweep()


def test_grid_query_grows_sublogarithmically(benchmark, sweep_table, capsys):
    """Cost grows much more slowly than U (doubly-logarithmic shape)."""
    with capsys.disabled():
        sweep_table.show()
    measured = sweep_table.measured_values()
    # U grows by a factor 4096 across the sweep; the cost may only grow by a
    # small constant factor beyond the output term.
    assert max(measured) <= 4.0 * max(1.0, min(measured))

    storage = make_storage(block_size=BLOCK_SIZE)
    points = uniform_points(512, universe=1 << 16, seed=2)
    structure = GridTopOpenStructure(storage, points, universe=1 << 16)
    query = top_open_queries(points, 1, selectivity=0.3, seed=2)[0]
    benchmark(lambda: structure.query(query))
