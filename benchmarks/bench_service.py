"""Service tier: sharded ``query_many`` vs the monolithic index.

Claim (ISSUE 1 acceptance): on shard-prunable workloads -- narrow
top-open batches whose x-extent is well under one shard's range -- the
sharded :class:`repro.service.SkylineService` performs fewer total block
transfers than the monolithic :class:`repro.RangeSkylineIndex`, at every
shard count in the sweep, because the router prunes non-overlapping shards
and the serving shards' structures are ``shard_count`` times smaller.

The run also persists every table to ``BENCH_service.json`` (schema v1,
see :func:`repro.bench.reporting.write_json_report`) so later PRs can
track the performance trajectory, and prints a warm hot-window traffic
table for the cache/batching picture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.bench_service import run_prunable_sweep, run_traffic_sweep
from repro.bench.reporting import write_json_report

JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_service.json"


@pytest.fixture(scope="module")
def sweeps():
    prunable_table, prunable_summary = run_prunable_sweep()
    traffic_table, traffic_summary = run_traffic_sweep()
    write_json_report(
        [prunable_table, traffic_table],
        str(JSON_PATH),
        meta={
            "experiment": "service_vs_monolithic",
            "prunable_summary": prunable_summary,
            "traffic_summary": traffic_summary,
        },
    )
    return prunable_table, prunable_summary, traffic_table, traffic_summary


def test_sharded_batches_prune_io(sweeps, capsys):
    """Sharded query_many beats the monolithic index on prunable batches."""
    prunable_table, prunable_summary, traffic_table, _ = sweeps
    with capsys.disabled():
        prunable_table.show()
        traffic_table.show()
        print(f"\nwrote {JSON_PATH.name}")
    for workload, cell in prunable_summary.items():
        mono = cell["monolithic"]
        sharded = {k: v for k, v in cell.items() if k.startswith("shards=")}
        assert sharded, f"no sharded rows for {workload}"
        for engine, io in sharded.items():
            assert io < mono, (
                f"{workload}: {engine} used {io} block transfers, "
                f"monolithic used {mono}"
            )


def test_json_report_written(sweeps):
    """BENCH_service.json exists and carries the versioned schema."""
    import json

    payload = json.loads(JSON_PATH.read_text())
    assert payload["schema"] == 1
    assert len(payload["tables"]) == 2
    assert payload["meta"]["experiment"] == "service_vs_monolithic"
    titles = [table["title"] for table in payload["tables"]]
    assert any("Shard-prunable" in title for title in titles)
