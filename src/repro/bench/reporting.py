"""Tabular and machine-readable (JSON) reporting of benchmark results."""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class BenchmarkRow:
    """One row of a benchmark table: parameters plus measured/predicted cost.

    ``seconds`` is the cell's wall-clock time.  Block transfers stay the
    currency every assertion runs on (they are deterministic; wall time is
    not), but the seconds column keeps the simulated cost honest: a cell
    whose block count shrinks while its wall time balloons is optimising
    the model, not the machine.
    """

    params: Dict[str, object]
    measured_io: float
    predicted: Optional[float] = None
    seconds: Optional[float] = None

    @property
    def ratio(self) -> Optional[float]:
        if self.predicted is None or self.predicted == 0:
            return None
        return self.measured_io / self.predicted


@dataclass
class BenchmarkTable:
    """A named collection of rows that can render itself as aligned text."""

    title: str
    rows: List[BenchmarkRow] = field(default_factory=list)

    def add(
        self,
        measured_io: float,
        predicted: Optional[float] = None,
        seconds: Optional[float] = None,
        **params: object,
    ) -> BenchmarkRow:
        row = BenchmarkRow(
            params=dict(params),
            measured_io=measured_io,
            predicted=predicted,
            seconds=seconds,
        )
        self.rows.append(row)
        return row

    def column_names(self) -> List[str]:
        names: List[str] = []
        for row in self.rows:
            for key in row.params:
                if key not in names:
                    names.append(key)
        return names

    def render(self) -> str:
        """Aligned plain-text rendering of the table.

        The wall-clock ``seconds`` column appears only when at least one
        row carries a measurement, so pure counter tables stay unchanged.
        """
        with_seconds = any(row.seconds is not None for row in self.rows)
        columns = self.column_names() + ["measured I/O", "predicted", "ratio"]
        if with_seconds:
            columns.append("seconds")
        body: List[List[str]] = []
        for row in self.rows:
            cells = [self._fmt(row.params.get(name, "")) for name in self.column_names()]
            cells.append(self._fmt(row.measured_io))
            cells.append(self._fmt(row.predicted) if row.predicted is not None else "-")
            cells.append(self._fmt(row.ratio) if row.ratio is not None else "-")
            if with_seconds:
                cells.append(
                    f"{row.seconds:.4f}" if row.seconds is not None else "-"
                )
            body.append(cells)
        widths = [
            max(len(columns[i]), *(len(line[i]) for line in body)) if body else len(columns[i])
            for i in range(len(columns))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(name.ljust(widths[i]) for i, name in enumerate(columns)))
        lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
        for cells in body:
            lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(cells))))
        return "\n".join(lines)

    def show(self) -> None:
        """Print the table (used from the pytest benches via ``-s`` or capture)."""
        print()
        print(self.render())

    @staticmethod
    def _fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    # ------------------------------------------------------------------
    # Machine-readable output
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable representation of the table."""
        return {
            "title": self.title,
            "columns": self.column_names(),
            "rows": [
                {
                    "params": dict(row.params),
                    "measured_io": row.measured_io,
                    "predicted": row.predicted,
                    "ratio": row.ratio,
                    "seconds": row.seconds,
                }
                for row in self.rows
            ],
        }

    # ------------------------------------------------------------------
    # Shape checks used by the benchmark assertions
    # ------------------------------------------------------------------
    def ratios(self) -> List[float]:
        return [row.ratio for row in self.rows if row.ratio is not None]

    def max_ratio_spread(self) -> float:
        """max ratio / min ratio -- close to 1 when the predicted shape holds."""
        ratios = self.ratios()
        if not ratios or min(ratios) == 0:
            return float("inf")
        return max(ratios) / min(ratios)

    def measured_values(self) -> List[float]:
        return [row.measured_io for row in self.rows]


def counters_table(title: str, counters: Dict[str, object]) -> BenchmarkTable:
    """Render a flat counter mapping (e.g. a durability ledger) as a table.

    Each counter becomes one row with the value in the ``measured I/O``
    column, so WAL/snapshot/replay block-transfer counts from
    :meth:`repro.service.SkylineService.describe` or
    :meth:`repro.service.DurableStore.describe` print and serialise through
    the same machinery as every other benchmark table.
    """
    table = BenchmarkTable(title)
    for name, value in counters.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            table.add(measured_io=float(value), counter=name)
    return table


def write_json_report(
    tables: Sequence[BenchmarkTable],
    path: str,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write benchmark tables to ``path`` as JSON and return the payload.

    The payload is versioned (``schema``) and stamped with the run time and
    interpreter, so successive PRs can track the performance trajectory by
    diffing e.g. ``BENCH_service.json`` files produced by the same sweep.
    """
    payload: Dict[str, object] = {
        "schema": 1,
        "generated_unix": time.time(),
        "python": platform.python_version(),
        "meta": dict(meta or {}),
        "tables": [table.to_dict() for table in tables],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
