"""The ray-dragging structure of Lemma 4.

Given a set ``S`` of ``m`` points in ``[U]^2`` with ``m = (B log U)^{O(1)}``
and a vertical ray ``rho = alpha x [beta, U]``, the query reports the first
point of ``S`` hit when the ray is dragged to the left -- equivalently the
*rightmost* point with ``x <= alpha`` and ``y >= beta``.

The paper packs the per-node ``Y*max`` sets into O(1) blocks using word
tricks (the "minute structure"); here each such set is one block payload of
at most ``fanout`` points (asserted against the block size), so each node
inspection is one block transfer and the constant-height descent costs O(1)
I/Os exactly as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.point import Point
from repro.em.storage import StorageManager


@dataclass
class _RayDragNode:
    """One node of the ray-drag tree (stored in one block)."""

    is_leaf: bool
    # For leaves: the points themselves (sorted by x).  For internal nodes:
    # the highest point of each child ("Y*max") plus the child block ids and
    # each child's x-range upper bound.
    points: List[Point]
    children: List[int]
    child_x_max: List[float]

    def record_size(self) -> int:
        return max(1, len(self.points))


class RayDragStructure:
    """Constant-height structure answering leftward ray-dragging queries."""

    def __init__(
        self,
        storage: StorageManager,
        points: Sequence[Point],
        universe: Optional[int] = None,
        fanout: Optional[int] = None,
    ) -> None:
        self.storage = storage
        self.points = sorted(points, key=lambda p: p.x)
        universe = universe or max(2, len(self.points))
        b = storage.block_size * max(1.0, math.log2(max(2, universe)))
        default_fanout = max(4, int(round(b ** (1.0 / 3.0))))
        self.fanout = min(fanout or default_fanout, storage.block_size)
        self.leaf_capacity = storage.block_size
        self.root_id: Optional[int] = None
        self.height = 0
        if self.points:
            self.root_id = self._build(self.points)

    # ------------------------------------------------------------------
    # Construction (bottom-up, linear I/Os)
    # ------------------------------------------------------------------
    def _build(self, points: List[Point]) -> int:
        level_ids: List[int] = []
        level_summaries: List[Point] = []
        level_x_max: List[float] = []
        for start in range(0, len(points), self.leaf_capacity):
            chunk = points[start : start + self.leaf_capacity]
            node = _RayDragNode(
                is_leaf=True, points=list(chunk), children=[], child_x_max=[]
            )
            level_ids.append(self.storage.create(node))
            level_summaries.append(max(chunk, key=lambda p: p.y))
            level_x_max.append(chunk[-1].x)
        self.height = 1
        while len(level_ids) > 1:
            next_ids: List[int] = []
            next_summaries: List[Point] = []
            next_x_max: List[float] = []
            for start in range(0, len(level_ids), self.fanout):
                ids = level_ids[start : start + self.fanout]
                summaries = level_summaries[start : start + self.fanout]
                x_maxes = level_x_max[start : start + self.fanout]
                node = _RayDragNode(
                    is_leaf=False,
                    points=list(summaries),
                    children=list(ids),
                    child_x_max=list(x_maxes),
                )
                next_ids.append(self.storage.create(node))
                next_summaries.append(max(summaries, key=lambda p: p.y))
                next_x_max.append(x_maxes[-1])
            level_ids, level_summaries, level_x_max = (
                next_ids,
                next_summaries,
                next_x_max,
            )
            self.height += 1
        return level_ids[0]

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def drag_left(self, alpha: float, beta: float) -> Optional[Point]:
        """The rightmost point with ``x <= alpha`` and ``y >= beta`` (or None)."""
        if self.root_id is None:
            return None
        return self._drag(self.root_id, alpha, beta)

    def _drag(self, node_id: int, alpha: float, beta: float) -> Optional[Point]:
        node: _RayDragNode = self.storage.read(node_id)
        if node.is_leaf:
            best: Optional[Point] = None
            for point in node.points:
                if point.x <= alpha and point.y >= beta:
                    if best is None or point.x > best.x:
                        best = point
            return best
        # Children are x-disjoint and ordered; find the boundary child (the
        # last child whose x-range can contain alpha) and try it first -- its
        # points are the rightmost candidates.
        boundary = None
        for index in range(len(node.children)):
            child_min_x = node.child_x_max[index - 1] if index > 0 else -math.inf
            if child_min_x < alpha:
                boundary = index
            else:
                break
        if boundary is None:
            return None
        if node.child_x_max[boundary] > alpha or node.points[boundary].y >= beta:
            found = self._drag(node.children[boundary], alpha, beta)
            if found is not None:
                return found
        # Fall back to the rightmost fully-covered child whose highest point
        # clears beta; every point of such a child already satisfies x <= alpha.
        for index in range(boundary - 1, -1, -1):
            if node.points[index].y >= beta:
                return self._drag(node.children[index], alpha, beta)
        return None

    def block_count(self) -> int:
        """Blocks occupied by the structure."""
        if self.root_id is None:
            return 0
        count = 0
        stack = [self.root_id]
        while stack:
            node: _RayDragNode = self.storage.read(stack.pop())
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def __len__(self) -> int:
        return len(self.points)
