"""Monolithic vs. sharded engines: batch I/O and wall-clock sweeps.

Both experiments drive the two deployment shapes through the *same*
unified front door -- :class:`repro.engine.SkylineEngine` over a
:class:`~repro.engine.LocalIndexBackend` and over a
:class:`~repro.engine.ShardedServiceBackend` -- replaying identical query
streams and verifying the answers agree before recording a row.  Because
every request returns an :class:`~repro.engine.ExecutionReport` whose
block counts are that request's exact ledger delta, each row's I/O total
is the *sum of per-request reports*, and the harness cross-checks that
sum against the backend ledger (the engine's accounting invariant) on
every sweep cell.

1. :func:`run_prunable_sweep` (asserted by ``benchmarks/bench_service.py``)
   -- *shard-prunable* workloads: narrow top-open rectangles (x-extent well
   under one shard's range) measured cold-cache per query, the worst-case
   regime the paper's bounds describe.  The router prunes every shard whose
   x-range misses the query, and the one or two shards that serve it hold
   ``shard_count`` times fewer points, so their structures are shallower:
   the sharded engine performs fewer total block transfers than the
   monolithic one at every shard count.

2. :func:`run_traffic_sweep` (informational) -- warm Zipf-repeat traffic
   over hot windows with the result cache on, the regime a long-running
   service lives in.  Note the memory asymmetry inherent to scale-out:
   each shard node has its own ``memory_blocks``-frame pool, so aggregate
   cache grows with the shard count, while the monolithic engine has one
   pool.

``benchmarks/bench_service.py`` persists both tables to
``BENCH_service.json`` via :func:`repro.bench.reporting.write_json_report`
so future PRs can track the performance trajectory.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Sequence, Tuple

from repro.bench.reporting import BenchmarkTable
from repro.core.point import Point
from repro.core.queries import FourSidedQuery, RangeQuery, TopOpenQuery
from repro.em.config import EMConfig
from repro.engine import QueryRequest, QueryResult, SkylineEngine
from repro.service import ServiceConfig
from repro.workloads import (
    anticorrelated_points,
    clustered_points,
    correlated_points,
    top_open_queries,
    uniform_points,
)

WORKLOADS: Dict[str, Callable[..., List[Point]]] = {
    "uniform": uniform_points,
    "correlated": correlated_points,
    "anticorrelated": anticorrelated_points,
    "clustered": clustered_points,
}

Summary = Dict[str, Dict[str, float]]


def _canonical(results: Sequence[QueryResult]) -> List[List[Tuple[float, float]]]:
    return [sorted((p.x, p.y) for p in result.points) for result in results]


def _check(expected, got, context: str) -> None:
    if _canonical(got) != _canonical(expected):
        raise AssertionError(f"sharded answers diverge ({context})")


def _make_local(
    points: List[Point], block_size: int, memory_blocks: int
) -> SkylineEngine:
    return SkylineEngine.local(
        points,
        em_config=EMConfig(block_size=block_size, memory_blocks=memory_blocks),
    )


def _make_sharded(
    points: List[Point], shard_count: int, block_size: int, memory_blocks: int
) -> SkylineEngine:
    return SkylineEngine.sharded(
        points,
        ServiceConfig(
            shard_count=shard_count,
            block_size=block_size,
            memory_blocks=memory_blocks,
        ),
    )


def _assert_accounting(engine: SkylineEngine, context: str) -> None:
    """The engine invariant, cross-checked on every sweep cell: summing
    per-request report blocks (plus cache-drop maintenance flushes)
    reproduces the backend ledger exactly."""
    expected = engine.io_total() - engine.build_io - engine.maintenance_io()
    if engine.attributed_io() != expected:
        raise AssertionError(
            f"report blocks do not sum to the ledger delta ({context})"
        )


def run_prunable_sweep(
    n: int = 8192,
    shard_counts: Sequence[int] = (4, 8, 16),
    query_count: int = 24,
    selectivity: float = 0.01,
    block_size: int = 16,
    memory_blocks: int = 32,
    seed: int = 0,
    workloads: Sequence[str] = ("uniform", "correlated", "anticorrelated", "clustered"),
) -> Tuple[BenchmarkTable, Summary]:
    """Cold-cache narrow top-open batches: the shard-pruning win.

    Returns the table plus a summary mapping each workload to the batch
    I/O total of the monolithic engine (``"monolithic"``) and of every
    sharded engine (``"shards=K"``).
    """
    table = BenchmarkTable(
        f"Shard-prunable batches, cold cache -- top-open, n={n}, B={block_size}, "
        f"{query_count} queries, selectivity={selectivity}"
    )
    summary: Summary = {}
    for workload in workloads:
        points = WORKLOADS[workload](n, seed=seed + n)
        queries: List[RangeQuery] = list(
            top_open_queries(points, query_count, selectivity=selectivity, seed=seed)
        )

        cell = summary.setdefault(workload, {})
        mono = _make_local(points, block_size, memory_blocks)
        mono_io, mono_ms, expected = _measure_cold(mono, queries)
        _assert_accounting(mono, f"prunable/{workload}/monolithic")
        cell["monolithic"] = mono_io
        table.add(
            measured_io=mono_io,
            seconds=mono_ms / 1000.0,
            workload=workload,
            engine="monolithic",
            avg_k=round(sum(r.total_results for r in expected) / len(expected), 1),
        )

        for shard_count in shard_counts:
            sharded = _make_sharded(
                points, shard_count, block_size, memory_blocks
            )
            sharded_io, sharded_ms, got = _measure_cold(sharded, queries)
            _check(expected, got, f"prunable/{workload}/shards={shard_count}")
            _assert_accounting(
                sharded, f"prunable/{workload}/shards={shard_count}"
            )
            cell[f"shards={shard_count}"] = sharded_io
            table.add(
                measured_io=sharded_io,
                seconds=sharded_ms / 1000.0,
                workload=workload,
                engine=f"shards={shard_count}",
                avg_k=round(sum(r.total_results for r in got) / len(got), 1),
            )
    return table, summary


def run_traffic_sweep(
    n: int = 4096,
    shard_counts: Sequence[int] = (4, 8),
    query_count: int = 128,
    batch_size: int = 16,
    hot_windows: int = 16,
    selectivity: float = 0.02,
    block_size: int = 16,
    memory_blocks: int = 32,
    seed: int = 0,
    workloads: Sequence[str] = ("uniform", "clustered"),
) -> Tuple[BenchmarkTable, Summary]:
    """Warm Zipf-repeat traffic in batches, result cache on (informational).

    The batch stream repeats hot windows, so the sharded engine serves
    most of the later requests from its result cache (visible as
    ``cache_hit`` reports charging zero blocks) while the monolithic
    engine pays its buffer pool's luck per repeat.
    """
    table = BenchmarkTable(
        f"Hot-window traffic, warm pools + result cache -- n={n}, B={block_size}, "
        f"{query_count} queries over {hot_windows} windows, "
        f"batches of {batch_size}"
    )
    summary: Summary = {}
    for workload in workloads:
        points = WORKLOADS[workload](n, seed=seed + n)
        queries = _zipf_traffic(points, query_count, hot_windows, selectivity, seed)
        batches = [
            queries[start : start + batch_size]
            for start in range(0, len(queries), batch_size)
        ]
        cell = summary.setdefault(workload, {})

        # query_batch keeps the native batch executor (worklists,
        # coalescing, thread fan-out); I/O per cell is the sum of exact
        # batch-report ledger deltas.
        mono = _make_local(points, block_size, memory_blocks)
        mono.drop_caches()
        start = time.perf_counter()
        expected: List[QueryResult] = []
        mono_io = 0
        for batch in batches:
            results, batch_report = mono.query_batch(batch)
            expected.extend(results)
            mono_io += batch_report.blocks
        mono_ms = (time.perf_counter() - start) * 1000.0
        _assert_accounting(mono, f"traffic/{workload}/monolithic")
        cell["monolithic"] = mono_io
        table.add(
            measured_io=mono_io,
            seconds=mono_ms / 1000.0,
            workload=workload,
            engine="monolithic",
            cache_hit_rate="-",
        )

        for shard_count in shard_counts:
            sharded = _make_sharded(
                points, shard_count, block_size, memory_blocks
            )
            sharded.drop_caches()
            start = time.perf_counter()
            got: List[QueryResult] = []
            sharded_io = 0
            for batch in batches:
                results, batch_report = sharded.query_batch(batch)
                got.extend(results)
                sharded_io += batch_report.blocks
            sharded_ms = (time.perf_counter() - start) * 1000.0
            _check(expected, got, f"traffic/{workload}/shards={shard_count}")
            _assert_accounting(sharded, f"traffic/{workload}/shards={shard_count}")
            hits = sum(1 for r in got if r.report.cache_hit)
            cell[f"shards={shard_count}"] = sharded_io
            table.add(
                measured_io=sharded_io,
                seconds=sharded_ms / 1000.0,
                workload=workload,
                engine=f"shards={shard_count}",
                cache_hit_rate=round(hits / max(1, len(got)), 2),
            )
    return table, summary


def _zipf_traffic(
    points: Sequence[Point],
    count: int,
    windows: int,
    selectivity: float,
    seed: int,
) -> List[RangeQuery]:
    """Repeat-heavy traffic: ``count`` draws over ``windows`` hot rectangles."""
    rng = random.Random(seed)
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    width = (x_hi - x_lo) * selectivity
    pool: List[RangeQuery] = []
    for _ in range(windows):
        start = rng.uniform(x_lo, x_hi - width)
        beta = rng.uniform(y_lo, y_hi)
        if rng.random() < 0.5:
            pool.append(TopOpenQuery(start, start + width, beta))
        else:
            pool.append(
                FourSidedQuery(
                    start, start + width, beta, beta + (y_hi - y_lo) * 0.3
                )
            )
    weights = [1.0 / (rank + 1) for rank in range(windows)]
    return rng.choices(pool, weights=weights, k=count)


def _measure_cold(
    engine: SkylineEngine, queries: Sequence[RangeQuery]
) -> Tuple[int, float, List[QueryResult]]:
    """Per-query cold-cache measurement of a stream: (I/Os, ms, results).

    Caches are dropped before every request so the totals reflect the
    worst-case per-query cost the paper's bounds describe, with no
    cross-query reuse for either engine; ``consistency="fresh"`` keeps
    the sharded result cache out of the picture.  The I/O total is the
    sum of per-request report blocks.
    """
    io = 0
    elapsed = 0.0
    results: List[QueryResult] = []
    for query in queries:
        engine.drop_caches()
        start = time.perf_counter()
        result = engine.query(QueryRequest(query, consistency="fresh"))
        elapsed += time.perf_counter() - start
        io += result.report.blocks
        results.append(result)
    return io, elapsed * 1000.0, results
