"""Tests for the segment reduction of Section 2 (Sigma(P), Lemma 2)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.point import Point, leftmost_dominator
from repro.em.config import EMConfig
from repro.em.file import EMFile
from repro.em.storage import StorageManager
from repro.segments import (
    HorizontalSegment,
    compute_sigma,
    compute_sigma_emfile,
    is_monotonic,
    is_nesting,
    leftdom_map,
)


def random_points(n, seed):
    rng = random.Random(seed)
    xs = rng.sample(range(10 * n), n)
    ys = rng.sample(range(10 * n), n)
    return sorted(
        (Point(x, y, i) for i, (x, y) in enumerate(zip(xs, ys))), key=lambda p: p.x
    )


def test_segment_type_basics():
    seg = HorizontalSegment(1, 5, 2)
    assert seg.length == 4 and not seg.is_unbounded
    assert seg.covers_x(1) and seg.covers_x(4.9) and not seg.covers_x(5)
    assert seg.intersects_vertical(3, 0, 10)
    assert not seg.intersects_vertical(3, 3, 10)
    unbounded = HorizontalSegment(2, math.inf, 1)
    assert unbounded.is_unbounded and unbounded.covers_x(1e12)
    with pytest.raises(ValueError):
        HorizontalSegment(3, 3, 1)
    assert HorizontalSegment(1, 10, 0).x_interval_contains(HorizontalSegment(2, 5, 1))
    assert HorizontalSegment(1, 2, 0).x_interval_disjoint(HorizontalSegment(2, 3, 1))


def test_sigma_matches_leftdom_definition():
    points = random_points(120, 3)
    segments = compute_sigma(points)
    assert len(segments) == len(points)
    by_source = {seg.source.ident: seg for seg in segments}
    for point in points:
        dominator = leftmost_dominator(point, points)
        segment = by_source[point.ident]
        assert segment.x_left == point.x and segment.y == point.y
        if dominator is None:
            assert segment.is_unbounded
        else:
            assert segment.x_right == dominator.x


def test_sigma_requires_sorted_input():
    with pytest.raises(ValueError):
        compute_sigma([Point(2, 1), Point(1, 2)])


def test_sigma_output_order_is_by_right_endpoint():
    points = random_points(80, 4)
    segments = compute_sigma(points)
    rights = [seg.x_right for seg in segments]
    assert rights == sorted(rights)


def test_leftdom_map():
    points = [Point(1, 1), Point(2, 5), Point(3, 3), Point(4, 4)]
    mapping = leftdom_map(points)
    assert mapping[Point(1, 1)] == Point(2, 5)
    assert mapping[Point(3, 3)] == Point(4, 4)
    assert mapping[Point(2, 5)] is None
    assert mapping[Point(4, 4)] is None


def test_sigma_emfile_streaming_matches_in_memory():
    points = random_points(200, 5)
    storage = StorageManager(EMConfig(block_size=16, memory_blocks=8))
    source = EMFile.from_records(storage, points)
    output, count = compute_sigma_emfile(storage, source)
    assert count == len(points)
    streamed = sorted(output.scan(), key=lambda s: (s.x_left, s.y))
    in_memory = sorted(compute_sigma(points), key=lambda s: (s.x_left, s.y))
    assert [(s.x_left, s.x_right, s.y) for s in streamed] == [
        (s.x_left, s.x_right, s.y) for s in in_memory
    ]


def test_sigma_emfile_rejects_unsorted():
    storage = StorageManager(EMConfig(block_size=16, memory_blocks=8))
    source = EMFile.from_records(storage, [Point(5, 1), Point(1, 2)])
    with pytest.raises(ValueError):
        compute_sigma_emfile(storage, source)


def test_nesting_and_monotonic_checkers_detect_violations():
    good = [HorizontalSegment(0, 10, 5), HorizontalSegment(2, 4, 1)]
    assert is_nesting(good)
    crossing = [HorizontalSegment(0, 5, 5), HorizontalSegment(3, 8, 1)]
    assert not is_nesting(crossing)
    non_monotonic = [HorizontalSegment(0, 10, 1), HorizontalSegment(2, 4, 5)]
    assert not is_monotonic(non_monotonic)
    assert is_monotonic([])


coordinate_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2000),
        st.integers(min_value=0, max_value=2000),
    ),
    min_size=1,
    max_size=80,
    unique_by=(lambda t: t[0], lambda t: t[1]),
)


@settings(max_examples=50, deadline=None)
@given(coordinate_lists)
def test_sigma_is_always_nesting_and_monotonic(coords):
    """Lemma 2 as a property over random point sets."""
    points = sorted(
        (Point(x, y, i) for i, (x, y) in enumerate(coords)), key=lambda p: p.x
    )
    segments = compute_sigma(points)
    assert is_nesting(segments)
    assert is_monotonic(segments, samples=16)
