"""Unit tests for the simulated disk and I/O counters."""

import pytest

from repro.em.config import EMConfig
from repro.em.counters import IOMeter, IOStats
from repro.em.disk import BlockOverflowError, DiskFullError, DiskModel


def test_allocate_and_rw_charges_transfers():
    disk = DiskModel(EMConfig(block_size=8, memory_blocks=4))
    block = disk.allocate()
    assert disk.stats.total == 0  # allocation is free
    disk.write_block(block, [1, 2, 3])
    assert disk.stats.writes == 1
    assert disk.read_block(block) == [1, 2, 3]
    assert disk.stats.reads == 1


def test_write_new_combines_allocate_and_write():
    disk = DiskModel(EMConfig(block_size=8, memory_blocks=4))
    block = disk.write_new([1])
    assert disk.is_allocated(block)
    assert disk.stats.writes == 1


def test_block_overflow_is_rejected():
    disk = DiskModel(EMConfig(block_size=4, memory_blocks=4))
    block = disk.allocate()
    with pytest.raises(BlockOverflowError):
        disk.write_block(block, list(range(5)))


def test_capacity_limit():
    disk = DiskModel(EMConfig(block_size=4, memory_blocks=4), capacity_blocks=2)
    disk.allocate()
    disk.allocate()
    with pytest.raises(DiskFullError):
        disk.allocate()


def test_free_releases_blocks_and_counts():
    disk = DiskModel(EMConfig(block_size=4, memory_blocks=4))
    block = disk.write_new([1])
    assert disk.block_count() == 1
    disk.free(block)
    assert disk.block_count() == 0
    assert disk.stats.frees == 1
    with pytest.raises(KeyError):
        disk.read_block(block)


def test_unknown_block_access_raises():
    disk = DiskModel(EMConfig(block_size=4, memory_blocks=4))
    with pytest.raises(KeyError):
        disk.read_block(42)
    with pytest.raises(KeyError):
        disk.write_block(42, [])
    with pytest.raises(KeyError):
        disk.free(42)


def test_peek_does_not_charge():
    disk = DiskModel(EMConfig(block_size=4, memory_blocks=4))
    block = disk.write_new([7])
    before = disk.stats.total
    assert disk.peek(block) == [7]
    assert disk.stats.total == before


def test_iostats_snapshot_delta_and_meter():
    stats = IOStats()
    stats.record_read(2)
    first = stats.snapshot()
    stats.record_write(3)
    delta = stats.snapshot() - first
    assert delta.reads == 0 and delta.writes == 3
    with IOMeter(stats) as meter:
        stats.record_read()
    assert meter.delta.reads == 1
    stats.reset()
    assert stats.total == 0


def test_record_size_protocol():
    class Sized:
        def record_size(self):
            return 3

    disk = DiskModel(EMConfig(block_size=4, memory_blocks=4))
    block = disk.allocate()
    disk.write_block(block, Sized())  # fits: 3 <= 4
    assert disk.stats.writes == 1
