"""Continuous queries: standing rectangles answered by skyline deltas.

A subscription is a rectangle that stays registered after its first
answer.  Instead of re-asking, the subscriber receives
:class:`~repro.engine.report.SkylineDelta` notifications -- the points
that *entered* and *left* the rectangle's skyline -- whenever a pump
finds the underlying data changed.

The cost discipline is the whole point.  Recomputing every subscription
on every write is the naive tier the streaming benchmark measures
against; the manager instead reuses the *invalidation scopes* the result
cache already maintains: every shard of the sharded service carries a
stable ``uid`` and a ``write_version`` bumped on each write routed to
it.  At registration the manager records the ``(uid, write_version)``
vector of the shards the rectangle overlaps; a pump recomputes a
subscription only when that vector changed.  On a skewed (Zipf) write
stream most writes land on one hot shard, so subscriptions watching cold
x-ranges are skipped at zero block transfers -- the ≥3× win
``BENCH_streaming.json`` asserts.

Lock discipline: the manager's table is guarded by the tracked lock
``stream.subscriptions``, and the manager **never** holds it while
calling into the engine -- pumps snapshot the table, release, recompute,
then re-acquire to publish.  The serving tier calls :meth:`pump` while
holding its engine lock, giving the one static edge
``serve.server.engine -> stream.subscriptions`` (verified acyclic by
``tools/reprolint``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.locks import tracked_lock
from repro.core.point import Point
from repro.engine.engine import SkylineEngine
from repro.engine.report import KIND_DELTA, ExecutionReport, SkylineDelta
from repro.engine.requests import QueryRequest, SubscribeRequest

#: One shard generation: ``(shard.uid, shard.write_version)``.
Scope = Tuple[int, int]
#: The generation vector of every shard a rectangle overlaps (``None``
#: on a backend without shards -- then every pump recomputes).
ScopeVector = Optional[Tuple[Scope, ...]]

#: Canonical identity of a point inside a subscription's replay state.
_Key = Tuple[float, float, object]


def _canon(point: Point) -> _Key:
    return (point.x, point.y, point.ident)


class Subscription:
    """One registered continuous query and its replay state.

    ``state`` is the rectangle's skyline as of the last delivered delta;
    replaying every delta in ``revision`` order over the initial
    snapshot keeps it equal to the naive recomputed answer (the
    hypothesis property in ``tests/test_stream.py``).  Instances are
    mutated only by their manager, under its lock.
    """

    __slots__ = ("sub_id", "request", "state", "scopes", "revision", "active")

    def __init__(
        self, sub_id: int, request: SubscribeRequest, scopes: ScopeVector
    ) -> None:
        self.sub_id = sub_id
        self.request = request
        self.state: Dict[_Key, Point] = {}
        self.scopes = scopes
        self.revision = 0
        self.active = True

    def snapshot(self) -> List[Point]:
        """The subscription's current skyline view, in x-order."""
        return sorted(self.state.values(), key=lambda p: p.x)


class SubscriptionManager:
    """Registers rectangles, derives deltas, skips unwritten scopes.

    The manager drives an :class:`~repro.engine.SkylineEngine` (any
    backend).  On the sharded backend it reads the router and the shard
    table to build scope vectors; on the monolithic local backend there
    are no shards to scope by, so every pump recomputes every
    subscription (correct, just never skipped).
    """

    def __init__(self, engine: SkylineEngine) -> None:
        self.engine = engine
        self._lock = tracked_lock(
            "stream.subscriptions"
        )  # repro: guards(subscription table)
        self._subs: Dict[int, Subscription] = {}
        self._next_id = 0
        self._pumps = 0
        self._recomputed = 0
        self._skipped = 0
        self._delivered = 0
        self._unchanged = 0
        self._scope_scans = 0

    # ------------------------------------------------------------------
    # Scope vectors
    # ------------------------------------------------------------------
    def _scopes_for(self, request: SubscribeRequest) -> ScopeVector:
        """The ``(uid, write_version)`` vector of the overlapped shards."""
        service = getattr(self.engine.backend, "service", None)
        if service is None:
            return None
        shard_ids = service.router.shards_for(request.rect)
        return tuple(
            (service.shards[sid].uid, service.shards[sid].write_version)
            for sid in shard_ids
        )

    def _shard_versions(self) -> Optional[Dict[int, int]]:
        """One scan of the live shard table: ``{uid: write_version}``.

        Sufficient to decide staleness of any stored scope vector: shard
        uids are stable, and every topology operation retires the uids of
        the shards it rewrites, so a vector whose uids are all still live
        at their recorded versions proves the overlapped x-range is
        untouched -- no shard it covered was written *or* re-cut.
        """
        service = getattr(self.engine.backend, "service", None)
        if service is None:
            return None
        return {shard.uid: shard.write_version for shard in service.shards}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self, request: SubscribeRequest
    ) -> Tuple[Subscription, SkylineDelta]:
        """Register a standing rectangle; returns the handle plus the
        initial delta.

        With ``request.initial_snapshot`` the delta carries the current
        skyline as ``entered`` (revision 0); otherwise it is empty and
        the subscriber only ever sees changes relative to registration
        time.  Either way the replay state starts at the current answer.
        """
        result = self.engine.query(
            QueryRequest(rect=request.rect, consistency=request.consistency)
        )
        scopes = self._scopes_for(request)
        with self._lock:
            sub = Subscription(self._next_id, request, scopes)
            self._next_id += 1
            sub.state = {_canon(p): p for p in result.points}
            self._subs[sub.sub_id] = sub
        report = replace(result.report, kind=KIND_DELTA)
        entered = list(result.points) if request.initial_snapshot else []
        return sub, SkylineDelta(
            entered=entered, left=[], revision=0, report=report
        )

    def unregister(self, sub_id: int) -> bool:
        """Drop a subscription; returns whether it was registered."""
        with self._lock:
            sub = self._subs.pop(sub_id, None)
            if sub is None:
                return False
            sub.active = False
            return True

    # ------------------------------------------------------------------
    # The pump
    # ------------------------------------------------------------------
    def pump(self) -> Dict[int, SkylineDelta]:
        """Re-examine every subscription; deliver the non-empty deltas.

        For each registered rectangle the current scope vector is
        compared against the stored one: an unchanged vector proves no
        overlapped shard was written since the last look, so the
        subscription is skipped without touching a block.  Changed
        vectors trigger one engine query each; the answer is diffed
        against the replay state into ``entered``/``left``.

        Returns ``{sub_id: delta}`` for the subscriptions whose skyline
        actually changed.  Each delta's report is the ledger delta of
        its own recomputation, so the engine's accounting identity
        (``attributed + maintenance == total - build``) keeps holding
        across pumps -- asserted per notification batch by the tests and
        the benchmark.

        The scope check is batched: the pump scans the shard table once
        into a ``{uid: write_version}`` map, then decides each *distinct*
        stored scope vector exactly once against it (subscriptions over
        the same x-range share a vector, so a thousand subscribers on one
        hot rectangle cost one staleness probe, not a thousand router
        walks).  Only subscriptions in a stale group pay a recompute.
        """
        with self._lock:
            self._pumps += 1
            candidates = list(self._subs.values())
        versions = self._shard_versions()
        stale_groups: Dict[Tuple[Scope, ...], bool] = {}
        skipped = 0
        deltas: Dict[int, SkylineDelta] = {}
        for sub in candidates:
            if versions is not None and sub.scopes is not None:
                stale = stale_groups.get(sub.scopes)
                if stale is None:
                    stale = any(
                        versions.get(uid) != wv for uid, wv in sub.scopes
                    )
                    stale_groups[sub.scopes] = stale
                if not stale:
                    skipped += 1
                    continue
            scopes = self._scopes_for(sub.request)
            result = self.engine.query(
                QueryRequest(
                    rect=sub.request.rect,
                    consistency=sub.request.consistency,
                )
            )
            fresh = {_canon(p): p for p in result.points}
            with self._lock:
                self._recomputed += 1
                if not sub.active:
                    continue
                entered = sorted(
                    (p for key, p in fresh.items() if key not in sub.state),
                    key=lambda p: p.x,
                )
                left = sorted(
                    (p for key, p in sub.state.items() if key not in fresh),
                    key=lambda p: p.x,
                )
                sub.scopes = scopes
                if not entered and not left:
                    self._unchanged += 1
                    continue
                sub.state = fresh
                sub.revision += 1
                self._delivered += 1
                deltas[sub.sub_id] = SkylineDelta(
                    entered=entered,
                    left=left,
                    revision=sub.revision,
                    report=replace(result.report, kind=KIND_DELTA),
                )
        with self._lock:
            self._skipped += skipped
            self._scope_scans += len(stale_groups)
        return deltas

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._subs)

    def subscriptions(self) -> List[Subscription]:
        """The registered handles (a snapshot, in registration order)."""
        with self._lock:
            return sorted(self._subs.values(), key=lambda s: s.sub_id)

    def describe(self) -> Dict[str, object]:
        """Pump counters: the skip ratio is the delta tier's win."""
        with self._lock:
            recomputed = self._recomputed
            skipped = self._skipped
            return {
                "subscriptions": len(self._subs),
                "pumps": self._pumps,
                "recomputed": recomputed,
                "skipped": skipped,
                "delivered": self._delivered,
                "unchanged": self._unchanged,
                "scope_scans": self._scope_scans,
                "skip_ratio": (
                    skipped / (recomputed + skipped)
                    if recomputed + skipped
                    else 0.0
                ),
            }


def make_delta_report(base: ExecutionReport) -> ExecutionReport:
    """A ``kind="delta"`` copy of a query report (helper for the serve
    tier's notification lane)."""
    return replace(base, kind=KIND_DELTA)
