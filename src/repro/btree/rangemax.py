"""The range-max B-tree used by the static top-open structure (Theorem 1).

Keys are the x-coordinates of the points and the maintained aggregate is the
maximum y-coordinate, so ``max_y_in(x_lo, x_hi)`` -- the value ``beta'`` the
query algorithm of Section 2.1 needs -- costs ``O(log_B n)`` I/Os.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.btree.btree import BTree
from repro.btree.bulk import bulk_load_sorted
from repro.core.point import Point
from repro.em.storage import StorageManager


class RangeMaxBTree:
    """A B-tree over points keyed by x, answering max-y range queries."""

    def __init__(self, storage: StorageManager, points: Optional[Iterable[Point]] = None) -> None:
        self.storage = storage
        self.tree = BTree(storage, aggregate=_max_y)
        if points is not None:
            for point in points:
                self.insert(point)

    @classmethod
    def build_sorted(
        cls, storage: StorageManager, points_sorted_by_x: Sequence[Point]
    ) -> "RangeMaxBTree":
        """Linear-I/O construction from x-sorted points (SABE requirement)."""
        instance = cls(storage)
        instance.tree = bulk_load_sorted(
            storage,
            [(p.x, p) for p in points_sorted_by_x],
            aggregate=_max_y,
        )
        return instance

    def insert(self, point: Point) -> None:
        """Index ``point`` under its x-coordinate."""
        self.tree.insert(point.x, point)

    def delete(self, point: Point) -> bool:
        """Remove the point stored under ``point.x``."""
        return self.tree.delete(point.x)

    def max_y_in(self, x_lo: float, x_hi: float) -> Optional[float]:
        """Maximum y-coordinate among points with x in ``[x_lo, x_hi]``."""
        best = self.tree.range_aggregate(x_lo, x_hi)
        return best.y if best is not None else None

    def highest_point_in(self, x_lo: float, x_hi: float) -> Optional[Point]:
        """The point attaining :meth:`max_y_in` (or ``None``)."""
        return self.tree.range_aggregate(x_lo, x_hi)

    def __len__(self) -> int:
        return len(self.tree)


def _max_y(values: Sequence[Point]) -> Point:
    return max(values, key=lambda p: p.y)
