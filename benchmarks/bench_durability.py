"""Durability tier: WAL amortisation and recovery cost, with JSON output.

Claims (ISSUE 2 acceptance):

* WAL group commit amortises durability writes exactly as modelled --
  ``floor(U / g) * ceil(g / B)`` block writes for ``U`` updates at group
  size ``g`` (ratio 1.0 across the sweep), monotonically fewer writes as
  ``g`` grows;
* recovery cost is the snapshot-cadence trade-off: sparser snapshots keep
  fewer snapshot blocks but replay a longer WAL suffix, and every
  recovered service matches the pre-shutdown state point-for-point.

Run under pytest (full sweep) or standalone::

    PYTHONPATH=src python benchmarks/bench_durability.py [--quick]

Both modes persist every table plus the final store counters to
``BENCH_durability.json`` (schema v1, see
:func:`repro.bench.reporting.write_json_report`) so later PRs can track
the durability-overhead trajectory.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.bench.bench_durability import run_recovery_sweep, run_wal_overhead_sweep
from repro.bench.reporting import counters_table, write_json_report

JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_durability.json"

QUICK = {
    "wal": dict(n=512, updates=128, group_commits=(1, 4, 16)),
    "recovery": dict(n=1024, updates=180, snapshot_cadences=(1, 2, 4)),
}
FULL = {
    "wal": dict(n=2048, updates=512, group_commits=(1, 4, 16, 64)),
    "recovery": dict(n=4096, updates=480, snapshot_cadences=(1, 2, 4)),
}


def run_sweeps(quick: bool = False):
    params = QUICK if quick else FULL
    wal_table, wal_summary = run_wal_overhead_sweep(**params["wal"])
    recovery_table, recovery_summary = run_recovery_sweep(**params["recovery"])
    sparsest = max(recovery_summary, key=lambda key: int(key.split("=")[1]))
    counters = counters_table(
        "Final durability counters (sparsest-cadence recovery run)",
        dict(recovery_summary[sparsest]),
    )
    write_json_report(
        [wal_table, recovery_table, counters],
        str(JSON_PATH),
        meta={
            "experiment": "durability_overhead",
            "quick": quick,
            "wal_summary": wal_summary,
            "recovery_summary": recovery_summary,
        },
    )
    return wal_table, wal_summary, recovery_table, recovery_summary


def check(wal_summary, recovery_summary) -> None:
    """The assertions both pytest and the CLI smoke run enforce."""
    wal_writes = [
        cell["wal_writes"]
        for _, cell in sorted(
            wal_summary.items(), key=lambda kv: int(kv[0].split("=")[1])
        )
    ]
    assert all(
        later <= earlier for earlier, later in zip(wal_writes, wal_writes[1:])
    ), f"group commit failed to amortise WAL writes: {wal_writes}"
    assert wal_writes[-1] < wal_writes[0], (
        f"largest group size did not reduce WAL writes: {wal_writes}"
    )
    cadences = sorted(
        recovery_summary.items(), key=lambda kv: int(kv[0].split("=")[1])
    )
    replayed = [cell["replayed_records"] for _, cell in cadences]
    snapshot_blocks = [cell["snapshot_blocks"] for _, cell in cadences]
    assert all(
        later >= earlier for earlier, later in zip(replayed, replayed[1:])
    ), f"sparser snapshots must replay at least as much: {replayed}"
    assert all(
        later <= earlier
        for earlier, later in zip(snapshot_blocks, snapshot_blocks[1:])
    ), f"sparser snapshots must keep fewer snapshot blocks: {snapshot_blocks}"


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
import pytest  # noqa: E402


@pytest.fixture(scope="module")
def sweeps():
    return run_sweeps(quick=False)


def test_wal_amortisation_and_recovery_tradeoff(sweeps, capsys):
    wal_table, wal_summary, recovery_table, recovery_summary = sweeps
    with capsys.disabled():
        wal_table.show()
        recovery_table.show()
        print(f"\nwrote {JSON_PATH.name}")
    check(wal_summary, recovery_summary)
    # The WAL model is exact: measured == predicted at every group size.
    for row in wal_table.rows:
        assert row.ratio == 1.0, f"WAL write model broke: {row.params}"


def test_json_report_written(sweeps):
    import json

    payload = json.loads(JSON_PATH.read_text())
    assert payload["schema"] == 1
    assert payload["meta"]["experiment"] == "durability_overhead"
    assert len(payload["tables"]) == 3


# ----------------------------------------------------------------------
# CLI entry point (CI smoke run: --quick)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sweep for CI smoke runs (same assertions, less work)",
    )
    args = parser.parse_args(argv)
    wal_table, wal_summary, recovery_table, recovery_summary = run_sweeps(
        quick=args.quick
    )
    wal_table.show()
    recovery_table.show()
    check(wal_summary, recovery_summary)
    print(f"\nok -- wrote {JSON_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
