"""The dynamic top-open structure of Section 4.2 (Theorem 4).

An ``(a, 2a)``-tree with ``a = 2 B^eps`` indexes the x-order of the mirrored
point set ``P~ = {(x, -y)}``.  Every node carries an I/O-CPQA over the
elements of its subtree in x-order with key ``-y``: attrition then removes
exactly the dominated points, so a node's queue *is* the skyline of its
subtree.  A node's queue is obtained by ``CatenateAndAttrite``-ing its
children's queues left to right; because the queues are persistent and each
internal node keeps a copy of its children's queue descriptors (the paper's
"representative blocks"), recomputing the queues along a root-to-leaf path
after an update touches only the path's own blocks.

A top-open query ``[x_lo, x_hi] x [y_lo, inf[`` concatenates the queues of
the O(a log_a(n/B)) canonical nodes of the x-range (plus temporary queues
over the in-range points of the two boundary leaves) and pops elements until
the key exceeds ``-y_lo``, reporting the range skyline top-down in
``O(log_{2B^eps}(n/B) + k/B^{1-eps})`` I/Os.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.point import Point, resolve_victim_index
from repro.core.queries import RangeQuery
from repro.em.storage import StorageManager
from repro.pqa.iocpqa import IOCPQA


@dataclass
class _Leaf:
    """A leaf block: points sorted by x plus the leaf's skyline queue."""

    points: List[Point] = field(default_factory=list)
    queue: Optional[IOCPQA] = None

    @property
    def is_leaf(self) -> bool:
        return True

    def record_size(self) -> int:
        return max(1, len(self.points))

    def x_max(self) -> float:
        return self.points[-1].x if self.points else -math.inf


@dataclass
class _Internal:
    """An internal block: children, separators and queue descriptors."""

    children: List[int] = field(default_factory=list)
    separators: List[float] = field(default_factory=list)  # max x per child
    child_queues: List[Optional[IOCPQA]] = field(default_factory=list)
    queue: Optional[IOCPQA] = None

    @property
    def is_leaf(self) -> bool:
        return False

    def record_size(self) -> int:
        return max(1, len(self.children))

    def x_max(self) -> float:
        return self.separators[-1] if self.separators else -math.inf

    def child_index_for(self, x: float) -> int:
        for index, separator in enumerate(self.separators):
            if x <= separator:
                return index
        return len(self.children) - 1


class DynamicTopOpenStructure:
    """Dynamic, linear-space top-open range skyline structure (Theorem 4)."""

    def __init__(
        self,
        storage: StorageManager,
        points: Optional[Iterable[Point]] = None,
        epsilon: float = 0.5,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")
        self.storage = storage
        self.epsilon = epsilon
        block = storage.block_size
        # Leaves hold between ``leaf_capacity`` and ``2 * leaf_capacity``
        # points and must fit one block; internal nodes hold between
        # ``fanout`` and ``2 * fanout`` children under the same constraint.
        self.fanout = min(max(2, math.ceil(2 * block ** epsilon)), max(2, block // 2))
        self.leaf_capacity = max(2, block // 2)
        self.record_capacity = max(1, int(round(block ** (1.0 - epsilon))))
        self._count = 0
        self.root_id = self.storage.create(_Leaf(points=[], queue=self._empty_queue()))
        if points is not None:
            self.bulk_load(sorted(points, key=lambda p: p.x))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _empty_queue(self) -> IOCPQA:
        return IOCPQA.empty(self.storage, self.record_capacity)

    def _leaf_queue(self, points: Sequence[Point]) -> IOCPQA:
        """The skyline queue of a leaf (elements in x-order keyed by -y)."""
        return IOCPQA.build(
            self.storage,
            [(-p.y, p) for p in points],
            self.record_capacity,
        )

    def bulk_load(self, points_sorted_by_x: Sequence[Point]) -> None:
        """SABE bulk construction from x-sorted points (O(n/B) block writes)."""
        if not points_sorted_by_x:
            return
        # Free the placeholder root.
        self.storage.free(self.root_id)
        self._count = len(points_sorted_by_x)
        level: List[Tuple[int, float, IOCPQA]] = []
        capacity = self.leaf_capacity
        for start in range(0, len(points_sorted_by_x), capacity):
            chunk = list(points_sorted_by_x[start : start + capacity])
            queue = self._leaf_queue(chunk)
            leaf_id = self.storage.create(_Leaf(points=chunk, queue=queue))
            level.append((leaf_id, chunk[-1].x, queue))
        while len(level) > 1:
            next_level: List[Tuple[int, float, IOCPQA]] = []
            for start in range(0, len(level), self.fanout):
                group = level[start : start + self.fanout]
                queue = self._catenate([q for _, _, q in group])
                node = _Internal(
                    children=[node_id for node_id, _, _ in group],
                    separators=[x_max for _, x_max, _ in group],
                    child_queues=[q for _, _, q in group],
                    queue=queue,
                )
                node_id = self.storage.create(node)
                next_level.append((node_id, group[-1][1], queue))
            level = next_level
        self.root_id = level[0][0]

    def _catenate(self, queues: Sequence[Optional[IOCPQA]]) -> IOCPQA:
        """CatenateAndAttrite a left-to-right sequence of child queues."""
        result: Optional[IOCPQA] = None
        for queue in queues:
            if queue is None:
                continue
            result = queue if result is None else result.catenate_and_attrite(queue)
        return result if result is not None else self._empty_queue()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Insert ``point`` in O(log_{2B^eps}(n/B)) I/Os (plus leaf queue writes)."""
        path = self._descend(point.x)
        leaf_id, leaf = path[-1]
        leaf.points.append(point)
        leaf.points.sort(key=lambda p: p.x)
        leaf.queue = self._leaf_queue(leaf.points)
        self.storage.write(leaf_id, leaf)
        self._count += 1
        if len(leaf.points) > 2 * self.leaf_capacity:
            self._split_leaf(path)
        self._refresh_path(point.x)

    def delete(self, point: Point) -> bool:
        """Delete the point with ``point``'s coordinates; returns success.

        Among coordinate twins, a stored point whose ``ident`` equals
        ``point.ident`` is preferred, so the structure removes the same
        identity as every other structure indexing the same point set
        (the facade's right-open structure stores the axis-swapped copy of
        each point, and the swap preserves ``ident``).
        """
        path = self._descend(point.x)
        leaf_id, leaf = path[-1]
        victim = resolve_victim_index(leaf.points, point)
        if victim is None:
            return False
        del leaf.points[victim]
        leaf.queue = self._leaf_queue(leaf.points)
        self.storage.write(leaf_id, leaf)
        self._count -= 1
        self._refresh_path(point.x)
        return True

    def _descend(self, x: float) -> List[Tuple[int, object]]:
        path: List[Tuple[int, object]] = []
        node_id = self.root_id
        while True:
            node = self.storage.read(node_id)
            path.append((node_id, node))
            if node.is_leaf:
                return path
            node_id = node.children[node.child_index_for(x)]

    def _refresh_path(self, x: float) -> None:
        """Propagate the updated leaf queue to all ancestors of the leaf at ``x``."""
        path = self._descend(x)
        child_id, child = path[-1]
        for node_id, node in reversed(path[:-1]):
            index = node.children.index(child_id)
            # A separator only needs to upper-bound its subtree's x values.
            # When a delete empties the child, its x_max() degenerates to
            # -inf; keeping the old separator preserves the non-decreasing
            # separator order, otherwise an ancestor would report -inf as
            # the subtree maximum and range queries would skip siblings
            # that still hold points.
            new_max = child.x_max()
            if new_max != -math.inf:
                node.separators[index] = new_max
            node.child_queues[index] = child.queue
            node.queue = self._catenate(node.child_queues)
            self.storage.write(node_id, node)
            child_id, child = node_id, node

    def _split_leaf(self, path: List[Tuple[int, object]]) -> None:
        leaf_id, leaf = path[-1]
        mid = len(leaf.points) // 2
        right_points = leaf.points[mid:]
        leaf.points = leaf.points[:mid]
        leaf.queue = self._leaf_queue(leaf.points)
        self.storage.write(leaf_id, leaf)
        right = _Leaf(points=right_points, queue=self._leaf_queue(right_points))
        right_id = self.storage.create(right)
        if len(path) == 1:
            root = _Internal(
                children=[leaf_id, right_id],
                separators=[leaf.x_max(), right.x_max()],
                child_queues=[leaf.queue, right.queue],
            )
            root.queue = self._catenate(root.child_queues)
            self.root_id = self.storage.create(root)
            return
        self._insert_child_after(path[:-1], leaf_id, right_id, right.x_max(), right.queue)

    def _insert_child_after(
        self,
        path: List[Tuple[int, object]],
        existing_id: int,
        new_id: int,
        new_separator: float,
        new_queue: IOCPQA,
    ) -> None:
        parent_id, parent = path[-1]
        index = parent.children.index(existing_id)
        existing = self.storage.read(existing_id)
        parent.separators[index] = existing.x_max()
        parent.child_queues[index] = existing.queue
        parent.children.insert(index + 1, new_id)
        parent.separators.insert(index + 1, new_separator)
        parent.child_queues.insert(index + 1, new_queue)
        parent.queue = self._catenate(parent.child_queues)
        self.storage.write(parent_id, parent)
        if len(parent.children) > 2 * self.fanout:
            self._split_internal(path)

    def _split_internal(self, path: List[Tuple[int, object]]) -> None:
        node_id, node = path[-1]
        mid = len(node.children) // 2
        right = _Internal(
            children=node.children[mid:],
            separators=node.separators[mid:],
            child_queues=node.child_queues[mid:],
        )
        right.queue = self._catenate(right.child_queues)
        node.children = node.children[:mid]
        node.separators = node.separators[:mid]
        node.child_queues = node.child_queues[:mid]
        node.queue = self._catenate(node.child_queues)
        self.storage.write(node_id, node)
        right_id = self.storage.create(right)
        if len(path) == 1:
            root = _Internal(
                children=[node_id, right_id],
                separators=[node.x_max(), right.x_max()],
                child_queues=[node.queue, right.queue],
            )
            root.queue = self._catenate(root.child_queues)
            self.root_id = self.storage.create(root)
            return
        self._insert_child_after(path[:-1], node_id, right_id, right.x_max(), right.queue)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, query: RangeQuery) -> List[Point]:
        """Maxima inside a top-open rectangle, sorted by x."""
        if not query.is_top_open:
            raise ValueError("DynamicTopOpenStructure answers top-open queries only")
        return self.query_top_open(query.x_lo, query.x_hi, query.y_lo)

    def query_top_open(self, x_lo: float, x_hi: float, y_lo: float) -> List[Point]:
        """Answer ``[x_lo, x_hi] x [y_lo, inf[`` via queue concatenation."""
        if self._count == 0:
            return []
        queues = self._range_queues(self.root_id, x_lo, x_hi)
        combined = self._catenate(queues)
        threshold = -y_lo
        popped, _ = combined.pop_while(lambda key: key <= threshold)
        points = [payload for _, payload in popped]
        points.sort(key=lambda p: p.x)
        return points

    def _range_queues(
        self, node_id: int, x_lo: float, x_hi: float
    ) -> List[IOCPQA]:
        """Queues of the canonical decomposition of ``[x_lo, x_hi]`` under ``node_id``."""
        node = self.storage.read(node_id)
        if node.is_leaf:
            in_range = [p for p in node.points if x_lo <= p.x <= x_hi]
            if not in_range:
                return []
            if in_range == node.points and node.queue is not None:
                return [node.queue]
            return [
                IOCPQA.build_in_memory(
                    self.storage,
                    [(-p.y, p) for p in in_range],
                    self.record_capacity,
                )
            ]
        queues: List[IOCPQA] = []
        for index, child_id in enumerate(node.children):
            # The child's points all have x in (prev_sep, child_hi].
            prev_sep = node.separators[index - 1] if index > 0 else -math.inf
            child_hi = node.separators[index]
            if prev_sep >= x_hi:
                break
            if child_hi < x_lo:
                continue
            if prev_sep >= x_lo and child_hi <= x_hi:
                # Canonical node: its whole subtree is inside the x-range, so
                # its pre-built queue (stored in this block) is used directly.
                queue = node.child_queues[index]
                if queue is not None:
                    queues.append(queue)
                continue
            queues.extend(self._range_queues(child_id, x_lo, x_hi))
        return queues

    # ------------------------------------------------------------------
    # Accounting / introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def height(self) -> int:
        """Number of levels of the base tree."""
        levels = 1
        node = self.storage.read(self.root_id)
        while not node.is_leaf:
            levels += 1
            node = self.storage.read(node.children[0])
        return levels

    def global_skyline(self) -> List[Point]:
        """The skyline of the whole point set (the root queue's content)."""
        root = self.storage.read(self.root_id)
        queue = root.queue
        if queue is None:
            return []
        return sorted((payload for _, payload in queue.items()), key=lambda p: p.x)


def dynamic_query_bound(n: int, k: int, block_size: int, epsilon: float) -> float:
    """The theoretical query bound ``log_{2B^eps}(n/B) + k/B^{1-eps}``."""
    blocks = max(2, n // max(1, block_size))
    base = max(2.0, 2 * block_size ** epsilon)
    return math.log(blocks, base) + k / max(1.0, block_size ** (1.0 - epsilon)) + 1.0


def dynamic_update_bound(n: int, block_size: int, epsilon: float) -> float:
    """The theoretical update bound ``log_{2B^eps}(n/B)``."""
    blocks = max(2, n // max(1, block_size))
    base = max(2.0, 2 * block_size ** epsilon)
    return math.log(blocks, base) + 1.0
