"""The append-only, block-batched write-ahead log of the service tier.

Every acknowledged update of a durable :class:`repro.service.SkylineService`
is first serialised as a :class:`WalRecord` and appended here.  Records
accumulate in an in-memory tail and are *group-committed*: every
``group_commit_size`` records (or on an explicit :meth:`WriteAheadLog.flush`,
which compaction forces) the tail is written to the
:class:`~repro.service.durability.store.DurableStore` in blocks of at most
``B`` records, each costing exactly one block write on the store's dedicated
:class:`repro.em.StorageManager`.  That makes the durability overhead a
first-class quantity of the I/O ledger: ``floor(records / group) *
ceil(group / B)`` block writes per ``records`` appended (the partial
group at the end stays in the tail), the classic group-commit trade-off
between write amortisation and the amount of acknowledged work a crash may
lose (up to ``group_commit_size - 1`` records sitting in the tail).

LSNs are positional: the ``k``-th record ever made durable carries
``lsn == k`` (1-based).  The tail's provisional LSNs continue the durable
count, so a crash that loses the tail simply reuses those numbers -- exactly
the behaviour of a real log whose unflushed suffix never existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.point import Point
from repro.service.durability.store import DurableStore

OP_INSERT = "insert"
OP_DELETE = "delete"
OP_COMPACT = "compact"
# Level-aware checkpoint records of the leveled update path: a FLUSH marks
# the memtable sealing into the merge scheduler (so replay seals at exactly
# the same record boundary the live service did, whatever thresholds the
# recovering config would have used), and a DRAIN marks an explicit
# full-drain of the merge queue -- a quiescent point a snapshot may be
# anchored to, like a compaction checkpoint.
OP_FLUSH = "flush"
OP_DRAIN = "drain"
# Online topology records: a SPLIT carries the shard position (``ident``)
# and the cut x-value (``x``) so replay re-applies the exact same cut the
# live service chose, and a MERGE carries the left shard position of the
# merged pair.  Both are scheduling events group-committed like updates:
# losing an unflushed tail record simply reverts the store to the
# pre-change topology, which is a consistent state.
OP_SPLIT = "split"
OP_MERGE = "merge"
# A FOLD rebuilds one shard in place from its range's live records (its
# residents plus its slice of the level tower, minus tombstones) without
# moving any cut -- the topology manager's pressure-relief action.
OP_FOLD = "fold"


@dataclass(frozen=True)
class WalRecord:
    """One logged operation: an insert/delete of a point, or a compaction.

    Insert and delete records carry the exact victim (coordinates plus
    ``ident``), so replay removes precisely the point the live service
    removed.  Compact records carry no payload; they mark the checkpoint a
    snapshot may be anchored to.
    """

    lsn: int
    op: str
    x: Optional[float] = None
    y: Optional[float] = None
    ident: Optional[int] = None

    def point(self) -> Point:
        """The point payload of an insert/delete record."""
        if self.op not in (OP_INSERT, OP_DELETE) or self.x is None or self.y is None:
            raise ValueError(f"record {self} carries no point payload")
        return Point(self.x, self.y, self.ident)

    def record_size(self) -> int:
        """One WAL record occupies one record slot of a block."""
        return 1


class WriteAheadLog:
    """Group-committed appender over a :class:`DurableStore`'s WAL area."""

    def __init__(self, store: DurableStore, group_commit_size: int = 8) -> None:
        if group_commit_size < 1:
            raise ValueError(
                f"group_commit_size must be >= 1, got {group_commit_size}"
            )
        self.store = store
        self.group_commit_size = group_commit_size
        self._tail: List[WalRecord] = []

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(
        self, op: str, point: Optional[Point] = None, force: bool = False
    ) -> WalRecord:
        """Append one record; group-commits when the tail fills (or forced)."""
        lsn = self.store.wal_durable + len(self._tail) + 1
        record = WalRecord(
            lsn=lsn,
            op=op,
            x=None if point is None else point.x,
            y=None if point is None else point.y,
            ident=None if point is None else point.ident,
        )
        self._tail.append(record)
        if force or len(self._tail) >= self.group_commit_size:
            self.flush()
        return record

    def log_insert(self, point: Point) -> WalRecord:
        return self.append(OP_INSERT, point)

    def log_delete(self, point: Point) -> WalRecord:
        return self.append(OP_DELETE, point)

    def log_compact(self) -> WalRecord:
        """A compaction checkpoint; forces the whole tail durable first."""
        return self.append(OP_COMPACT, force=True)

    def log_flush(self, sid: Optional[int] = None) -> WalRecord:
        """A memtable-seal marker (leveled path); group-committed like an
        update -- a seal is a scheduling event, not a durability point.

        Per-shard towers seal one shard's memtable cut at a time: the
        record carries the shard position in ``ident`` so replay seals
        exactly the same records.  ``None`` (the legacy encoding) seals
        every shard's cut.
        """
        lsn = self.store.wal_durable + len(self._tail) + 1
        record = WalRecord(lsn=lsn, op=OP_FLUSH, ident=sid)
        self._tail.append(record)
        if len(self._tail) >= self.group_commit_size:
            self.flush()
        return record

    def log_drain(self, sid: Optional[int] = None) -> WalRecord:
        """A drain checkpoint (leveled path); forces the tail durable so a
        snapshot may be anchored to it.  ``ident`` carries the shard
        position for a single-tower drain, ``None`` for a full drain."""
        lsn = self.store.wal_durable + len(self._tail) + 1
        record = WalRecord(lsn=lsn, op=OP_DRAIN, ident=sid)
        self._tail.append(record)
        self.flush()
        return record

    def log_split(self, sid: int, cut: float) -> WalRecord:
        """A hot-shard split: shard position ``sid`` cut at ``cut``.

        Group-committed like an update; the payload pins the exact cut so
        replay reproduces the post-split topology bit-for-bit.
        """
        lsn = self.store.wal_durable + len(self._tail) + 1
        record = WalRecord(lsn=lsn, op=OP_SPLIT, x=cut, ident=sid)
        self._tail.append(record)
        if len(self._tail) >= self.group_commit_size:
            self.flush()
        return record

    def log_merge(self, sid: int) -> WalRecord:
        """A cold-shard merge of the adjacent pair ``(sid, sid + 1)``."""
        lsn = self.store.wal_durable + len(self._tail) + 1
        record = WalRecord(lsn=lsn, op=OP_MERGE, ident=sid)
        self._tail.append(record)
        if len(self._tail) >= self.group_commit_size:
            self.flush()
        return record

    def log_fold(self, sid: int) -> WalRecord:
        """An in-place fold of shard ``sid`` (cuts unchanged)."""
        lsn = self.store.wal_durable + len(self._tail) + 1
        record = WalRecord(lsn=lsn, op=OP_FOLD, ident=sid)
        self._tail.append(record)
        if len(self._tail) >= self.group_commit_size:
            self.flush()
        return record

    def flush(self) -> int:
        """Force the in-memory tail to the store; returns records committed.

        Costs one block write per ``B`` records of tail (minimum one when
        the tail is non-empty), charged to the store's dedicated ledger.
        """
        if not self._tail:
            return 0
        committed = len(self._tail)
        self.store.append_wal_records(self._tail)
        self._tail = []
        return committed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Acknowledged records not yet durable (lost if we crash now)."""
        return len(self._tail)

    @property
    def durable_count(self) -> int:
        """Records safely on the store (survive any crash)."""
        return self.store.wal_durable

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WriteAheadLog(durable={self.durable_count}, "
            f"pending={self.pending}, group={self.group_commit_size})"
        )
