"""Baseline comparison (Section 1.2): who wins, and by how much.

Compares, on the same workloads and the same simulated machine:

* the naive scan + external skyline baseline (O((n/B) log_{M/B}(n/B)));
* the R-tree + BBS heuristic of Papadias et al.;
* the "externalised internal-memory" structure paying Omega(k) I/Os;
* this paper's static top-open structure (O(log_B n + k/B)).

The paper's claim is qualitative -- the new structures should beat all three
baselines by a growing factor as n grows -- and that is what the assertions
check.
"""

from __future__ import annotations

import pytest

from repro.baselines import InternalMemoryStructure, NaiveScanSkyline, RTreeBBS
from repro.bench import BenchmarkTable, measure_queries
from repro.bench.harness import make_storage
from repro.structures import StaticTopOpenStructure
from repro.workloads import anticorrelated_points, top_open_queries, uniform_points

BLOCK_SIZE = 64
SWEEP = [("uniform", 1024), ("uniform", 4096), ("anticorrelated", 2048)]
QUERIES = 6


def run_sweep() -> BenchmarkTable:
    table = BenchmarkTable("Baselines vs the paper's top-open structure")
    for distribution, n in SWEEP:
        generator = uniform_points if distribution == "uniform" else anticorrelated_points
        points = generator(n, seed=n)
        queries = top_open_queries(points, QUERIES, selectivity=0.3, seed=n)

        results = {}
        for name, factory in [
            ("paper", lambda s: StaticTopOpenStructure(s, points)),
            ("naive", lambda s: NaiveScanSkyline(s, points)),
            ("rtree_bbs", lambda s: RTreeBBS(s, points)),
            ("internal", lambda s: InternalMemoryStructure(s, points)),
        ]:
            storage = make_storage(block_size=BLOCK_SIZE)
            structure = factory(storage)
            io_per_query, avg_k = measure_queries(storage, structure, queries)
            results[name] = io_per_query
            results["avg_k"] = avg_k

        table.add(
            measured_io=results["paper"],
            predicted=None,
            dataset=distribution,
            n=n,
            avg_k=round(results["avg_k"], 1),
            naive_io=round(results["naive"], 1),
            rtree_bbs_io=round(results["rtree_bbs"], 1),
            internal_io=round(results["internal"], 1),
        )
    return table


@pytest.fixture(scope="module")
def sweep_table() -> BenchmarkTable:
    return run_sweep()


def test_paper_structure_beats_baselines(benchmark, sweep_table, capsys):
    """The top-open structure wins against every baseline on every dataset."""
    with capsys.disabled():
        sweep_table.show()
    for row in sweep_table.rows:
        assert row.measured_io < row.params["naive_io"]
        assert row.measured_io < row.params["internal_io"]
    # The winning margin over the naive scan grows with n (uniform rows).
    uniform_rows = [r for r in sweep_table.rows if r.params["dataset"] == "uniform"]
    gain_small = uniform_rows[0].params["naive_io"] / max(1.0, uniform_rows[0].measured_io)
    gain_large = uniform_rows[-1].params["naive_io"] / max(1.0, uniform_rows[-1].measured_io)
    assert gain_large > gain_small

    points = uniform_points(512, seed=1)
    storage = make_storage(block_size=BLOCK_SIZE)
    structure = StaticTopOpenStructure(storage, points)
    query = top_open_queries(points, 1, selectivity=0.3, seed=1)[0]
    benchmark(lambda: structure.query(query))
