"""Shard boundary computation and query routing.

The router keeps the ``shard_count - 1`` cut x-values that partition the
x-axis into half-open ranges ``[c_{i-1}, c_i)`` (with ``c_{-1} = -inf`` and
``c_last = +inf``).  Cuts are placed midway between the points straddling an
equal-size split of the x-sorted point set, so shards start balanced by
*size* (not by x-extent) and are re-balanced the same way on every
compaction.
"""

from __future__ import annotations

import bisect
from math import inf
from typing import List, Sequence, Tuple

from repro.core.point import Point
from repro.core.queries import RangeQuery


def size_balanced_cuts(points: Sequence[Point], shard_count: int) -> List[float]:
    """Cut x-values splitting ``points`` into ``shard_count`` equal chunks.

    Returns at most ``shard_count - 1`` strictly increasing cuts; fewer when
    the point set is too small to populate every shard.
    """
    if shard_count <= 1 or len(points) == 0:
        return []
    ordered = sorted(points, key=lambda p: (p.x, p.y))
    n = len(ordered)
    cuts: List[float] = []
    for i in range(1, shard_count):
        split = (i * n) // shard_count
        if split <= 0 or split >= n:
            continue
        left, right = ordered[split - 1].x, ordered[split].x
        cut = (left + right) / 2.0
        # Duplicate x at the chunk boundary would yield a cut equal to both;
        # keep cuts strictly increasing and strictly above the left point so
        # the half-open ranges stay a partition.
        if left < cut and (not cuts or cut > cuts[-1]):
            cuts.append(cut)
    return cuts


class ShardRouter:
    """Maps points and query rectangles to shard indices."""

    def __init__(self, cuts: Sequence[float]) -> None:
        self.cuts = list(cuts)
        if any(b <= a for a, b in zip(self.cuts, self.cuts[1:])):
            raise ValueError(f"cuts must be strictly increasing, got {self.cuts}")

    @property
    def shard_count(self) -> int:
        return len(self.cuts) + 1

    def shard_range(self, sid: int) -> Tuple[float, float]:
        """The half-open x-range ``[lo, hi)`` covered by shard ``sid``."""
        lo = -inf if sid == 0 else self.cuts[sid - 1]
        hi = inf if sid == len(self.cuts) else self.cuts[sid]
        return lo, hi

    def route_point(self, x: float) -> int:
        """The shard owning a point with x-coordinate ``x``."""
        return bisect.bisect_right(self.cuts, x)

    def shards_for(self, query: RangeQuery) -> List[int]:
        """Shards whose x-range intersects the query's x-extent (the rest
        are pruned: none of their points can lie in, or dominate anything
        in, the query rectangle)."""
        # Half-open shard ranges: a point with x equal to a cut belongs to
        # the shard to the cut's right, so both endpoints use bisect_right.
        first = bisect.bisect_right(self.cuts, query.x_lo)
        last = bisect.bisect_right(self.cuts, query.x_hi)
        return list(range(first, last + 1))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShardRouter(cuts={self.cuts})"
