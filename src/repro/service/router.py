"""Shard boundary computation and query routing.

The router keeps the ``shard_count - 1`` cut x-values that partition the
x-axis into half-open ranges ``[c_{i-1}, c_i)`` (with ``c_{-1} = -inf`` and
``c_last = +inf``).  Cuts are placed midway between the points straddling an
equal-size split of the x-sorted point set, so shards start balanced by
*size* (not by x-extent) and are re-balanced the same way on every
compaction.

Cuts are *versioned*: :attr:`ShardRouter.version` advances on every
topology change, and the online split/merge primitives
(:meth:`ShardRouter.split_cut`, :meth:`ShardRouter.merge_cut`) mutate the
cut list locally -- one cut inserted inside a hot shard's range, or one
cut removed between two cold neighbours -- so the service tier can
re-shard without a global rebuild (see
:class:`repro.service.topology.TopologyManager`).  Note that positional
shard ids shift when a cut is inserted or removed; anything that must
survive a topology change (result-cache keys, tombstone owner buckets)
keys on the stable :attr:`repro.service.shard.Shard.uid` instead.
"""

from __future__ import annotations

import bisect
from math import inf
from typing import List, Sequence, Tuple

from repro.core.point import Point
from repro.core.queries import RangeQuery


def size_balanced_cuts(points: Sequence[Point], shard_count: int) -> List[float]:
    """Cut x-values splitting ``points`` into ``shard_count`` equal chunks.

    Returns at most ``shard_count - 1`` strictly increasing cuts; fewer when
    the point set is too small to populate every shard.
    """
    if shard_count <= 1 or len(points) == 0:
        return []
    ordered = sorted(points, key=lambda p: (p.x, p.y))
    n = len(ordered)
    cuts: List[float] = []
    for i in range(1, shard_count):
        split = (i * n) // shard_count
        if split <= 0 or split >= n:
            continue
        left, right = ordered[split - 1].x, ordered[split].x
        cut = (left + right) / 2.0
        # Duplicate x at the chunk boundary would yield a cut equal to both;
        # keep cuts strictly increasing and strictly above the left point so
        # the half-open ranges stay a partition.
        if left < cut and (not cuts or cut > cuts[-1]):
            cuts.append(cut)
    return cuts


def size_balanced_midpoint(points: Sequence[Point]) -> float | None:
    """The cut splitting ``points`` into two equal-size halves, placed
    midway between the two straddling x-coordinates (the one-shard case of
    :func:`size_balanced_cuts`); ``None`` when no valid cut exists (fewer
    than two points, or duplicate x at the midpoint)."""
    if len(points) < 2:
        return None
    xs = sorted(p.x for p in points)
    split = len(xs) // 2
    left, right = xs[split - 1], xs[split]
    cut = (left + right) / 2.0
    return cut if left < cut else None


class ShardRouter:
    """Maps points and query rectangles to shard indices."""

    def __init__(self, cuts: Sequence[float]) -> None:
        self.cuts = list(cuts)
        if any(b <= a for a, b in zip(self.cuts, self.cuts[1:])):
            raise ValueError(f"cuts must be strictly increasing, got {self.cuts}")
        # Advances on every topology change (split, merge, full re-cut);
        # plans and dashboards quote it so a reader can tell two reports
        # apart when the cut list moved between them.
        self.version = 0

    @property
    def shard_count(self) -> int:
        return len(self.cuts) + 1

    def split_cut(self, sid: int, cut: float) -> None:
        """Insert ``cut`` inside shard ``sid``'s range: the shard splits
        into ``sid`` (its points below ``cut``) and ``sid + 1``; every
        shard to the right shifts one position."""
        lo, hi = self.shard_range(sid)
        if not lo < cut < hi:
            raise ValueError(
                f"split cut {cut} must lie strictly inside shard {sid}'s "
                f"range [{lo}, {hi})"
            )
        self.cuts.insert(sid, cut)
        self.version += 1

    def merge_cut(self, sid: int) -> float:
        """Remove the cut between shards ``sid`` and ``sid + 1``, merging
        them into one shard at position ``sid``; returns the removed cut."""
        if not 0 <= sid < len(self.cuts):
            raise ValueError(
                f"no adjacent pair at {sid}: only {self.shard_count} shards"
            )
        removed = self.cuts.pop(sid)
        self.version += 1
        return removed

    def shard_range(self, sid: int) -> Tuple[float, float]:
        """The half-open x-range ``[lo, hi)`` covered by shard ``sid``."""
        lo = -inf if sid == 0 else self.cuts[sid - 1]
        hi = inf if sid == len(self.cuts) else self.cuts[sid]
        return lo, hi

    def route_point(self, x: float) -> int:
        """The shard owning a point with x-coordinate ``x``."""
        return bisect.bisect_right(self.cuts, x)

    def shards_for(self, query: RangeQuery) -> List[int]:
        """Shards whose x-range intersects the query's x-extent (the rest
        are pruned: none of their points can lie in, or dominate anything
        in, the query rectangle)."""
        # Half-open shard ranges: a point with x equal to a cut belongs to
        # the shard to the cut's right, so both endpoints use bisect_right.
        first = bisect.bisect_right(self.cuts, query.x_lo)
        last = bisect.bisect_right(self.cuts, query.x_hi)
        return list(range(first, last + 1))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShardRouter(cuts={self.cuts})"
