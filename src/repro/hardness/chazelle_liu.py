"""The low-discrepancy lower-bound workload of Lemma 8.

For integers ``omega, lam >= 1`` the construction produces ``n = omega^lam``
points ``{(i, rho_omega(i))}`` where ``rho_omega(i)`` reverses the base-omega
digits of ``i`` and complements each digit, together with
``lam * omega^(lam-1)`` queries.  Every query's answer (the skyline inside an
anti-dominance range, after mirroring) has exactly ``omega`` points, and any
two queries share at most one answer point -- the (2, omega)-favourable
property that drives the indexability lower bound of Theorem 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.point import Point
from repro.core.queries import AntiDominanceQuery


def rho(i: int, omega: int, lam: int) -> int:
    """``rho_omega(i)``: reverse the base-omega digits of ``i`` and complement them."""
    digits = []
    value = i
    for _ in range(lam):
        digits.append(value % omega)
        value //= omega
    # ``digits`` holds the base-omega representation least-significant first;
    # reversing the digit order of ``i`` therefore means reading ``digits``
    # most-significant-last, i.e. keeping this order while complementing.
    result = 0
    for digit in digits:
        result = result * omega + (omega - digit - 1)
    return result


@dataclass(frozen=True)
class LowerBoundQuery:
    """One query of the workload, in both of its equivalent forms.

    ``corner`` is the corner of the *dominance* (upper-right) range in the
    original coordinates; ``expected`` is the exact answer set (the minima of
    the points inside that range, equivalently the skyline of the mirrored
    anti-dominance range).
    """

    corner: Tuple[float, float]
    expected: Tuple[Point, ...]

    @property
    def output_size(self) -> int:
        return len(self.expected)


@dataclass
class ChazelleLiuWorkload:
    """The (omega, lam)-input: points plus the (2, omega)-favourable queries."""

    omega: int
    lam: int
    points: List[Point]
    queries: List[LowerBoundQuery]

    @property
    def n(self) -> int:
        return len(self.points)

    def mirrored_points(self) -> List[Point]:
        """Points mirrored so the queries become anti-dominance skyline queries."""
        n = self.n
        return [Point(n - 1 - p.x, n - 1 - p.y, p.ident) for p in self.points]

    def mirrored_queries(self) -> List[AntiDominanceQuery]:
        """The anti-dominance form of the queries over :meth:`mirrored_points`."""
        n = self.n
        return [
            AntiDominanceQuery(n - 1 - query.corner[0], n - 1 - query.corner[1])
            for query in self.queries
        ]

    def mirrored_expected(self, query_index: int) -> List[Point]:
        """Expected answer of the mirrored query ``query_index``."""
        n = self.n
        return [
            Point(n - 1 - p.x, n - 1 - p.y, p.ident)
            for p in self.queries[query_index].expected
        ]


def chazelle_liu_input(omega: int, lam: int) -> ChazelleLiuWorkload:
    """Build the (omega, lam)-input of Lemma 8."""
    if omega < 2 or lam < 1:
        raise ValueError("need omega >= 2 and lam >= 1")
    n = omega ** lam
    points = [Point(float(i), float(rho(i, omega, lam)), ident=i) for i in range(n)]
    by_y = {int(p.y): p for p in points}

    queries: List[LowerBoundQuery] = []
    # Internal trie nodes at depth d correspond to fixed prefixes of length d
    # of the y-values written in base omega (most significant digit first).
    for depth in range(lam):
        subtree_size = omega ** (lam - depth)
        stride = omega ** (lam - depth - 1)
        for prefix_index in range(omega ** depth):
            y_base = prefix_index * subtree_size
            subtree_ys = range(y_base, y_base + subtree_size)
            for start in range(stride):
                group_ys = [y_base + start + j * stride for j in range(omega)]
                group = [by_y[y] for y in group_ys]
                corner = (
                    min(p.x for p in group) - 0.5,
                    min(p.y for p in group) - 0.5,
                )
                queries.append(
                    LowerBoundQuery(corner=corner, expected=tuple(group))
                )
            del subtree_ys
    return ChazelleLiuWorkload(omega=omega, lam=lam, points=points, queries=queries)


def verify_workload(workload: ChazelleLiuWorkload) -> bool:
    """Check the two properties of Lemma 8 by brute force (test utility).

    Property (i): every query's expected set is exactly the set of minima of
    the points dominating its corner.  Property (ii): two distinct queries
    share at most one point.
    """
    points = workload.points
    for query in workload.queries:
        qx, qy = query.corner
        inside = [p for p in points if p.x >= qx and p.y >= qy]
        minima = [
            p
            for p in inside
            if not any(
                o is not p and o.x <= p.x and o.y <= p.y for o in inside
            )
        ]
        if {p.ident for p in minima} != {p.ident for p in query.expected}:
            return False
    for i, first in enumerate(workload.queries):
        ids_first = {p.ident for p in first.expected}
        for second in workload.queries[i + 1 :]:
            shared = ids_first & {p.ident for p in second.expected}
            if len(shared) > 1:
                return False
    return True
