"""I/O accounting for the simulated disk."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.analysis import sanitize as _sanitize


@dataclass
class IOStats:
    """Counters of block transfers performed by a :class:`~repro.em.DiskModel`.

    ``reads`` and ``writes`` count *block transfers*, the only cost the
    external-memory model charges for.  ``allocations`` and ``frees`` are
    bookkeeping counters (free in the cost model) that the space accounting
    of the benchmarks uses.

    Under ``REPRO_SANITIZE=1`` every charge additionally runs the
    ledger-ownership check of :mod:`repro.analysis.sanitize`: a ledger
    charged from two threads with no synchronization point in between
    raises :class:`~repro.analysis.sanitize.LedgerRaceError` at the
    racing charge instead of silently losing increments.
    """

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    frees: int = 0

    @property
    def total(self) -> int:
        """Total number of charged block transfers."""
        return self.reads + self.writes

    def record_read(self, count: int = 1) -> None:
        """Charge ``count`` block reads."""
        if _sanitize.ledger_checks:
            _sanitize.check_charge(self)
        self.reads += count

    def record_write(self, count: int = 1) -> None:
        """Charge ``count`` block writes."""
        if _sanitize.ledger_checks:
            _sanitize.check_charge(self)
        self.writes += count

    def record_allocation(self, count: int = 1) -> None:
        """Note that ``count`` blocks were allocated (not charged)."""
        self.allocations += count

    def record_free(self, count: int = 1) -> None:
        """Note that ``count`` blocks were released (not charged)."""
        self.frees += count

    def absorb(self, other: "IOStats") -> None:
        """Fold another ledger's counts into this one.

        The service tier retires a shard machine's private ledger into an
        accumulator when the shard is rebuilt, so aggregate totals stay
        monotone across compactions.
        """
        if _sanitize.ledger_checks:
            _sanitize.check_charge(self)
        self.reads += other.reads
        self.writes += other.writes
        self.allocations += other.allocations
        self.frees += other.frees

    def snapshot(self) -> "IOSnapshot":
        """An immutable copy of the current counter values."""
        return IOSnapshot(
            reads=self.reads,
            writes=self.writes,
            allocations=self.allocations,
            frees=self.frees,
        )

    def reset(self) -> None:
        """Zero all counters."""
        _sanitize.forget_owner(self)
        self.reads = 0
        self.writes = 0
        self.allocations = 0
        self.frees = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IOStats(reads={self.reads}, writes={self.writes}, "
            f"total={self.total})"
        )


class IOStatsGroup:
    """A read-only aggregate view over several :class:`IOStats` ledgers.

    The service tier gives every shard machine (and the durability store)
    its own private ``IOStats`` so that concurrent workers never race one
    shared counter; this group sums the members on demand and quacks like
    an ``IOStats`` for measurement purposes (``total``, :meth:`snapshot`,
    and therefore :class:`IOMeter`).  Mutating methods are deliberately
    absent: charges always go to exactly one member ledger.
    """

    def __init__(self, members: Iterable[IOStats] = ()) -> None:
        self._members: List[IOStats] = list(members)

    def add(self, stats: IOStats) -> None:
        """Include one more ledger in the aggregate."""
        self._members.append(stats)

    def set_members(self, members: Iterable[IOStats]) -> None:
        """Replace the member set (e.g. after a shard rebuild)."""
        self._members = list(members)

    @property
    def members(self) -> List[IOStats]:
        return list(self._members)

    @property
    def reads(self) -> int:
        return sum(m.reads for m in self._members)

    @property
    def writes(self) -> int:
        return sum(m.writes for m in self._members)

    @property
    def allocations(self) -> int:
        return sum(m.allocations for m in self._members)

    @property
    def frees(self) -> int:
        return sum(m.frees for m in self._members)

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def snapshot(self) -> "IOSnapshot":
        """An immutable sum of every member's current counters."""
        return IOSnapshot(
            reads=self.reads,
            writes=self.writes,
            allocations=self.allocations,
            frees=self.frees,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IOStatsGroup({len(self._members)} members, reads={self.reads}, "
            f"writes={self.writes}, total={self.total})"
        )


@dataclass(frozen=True)
class IOSnapshot:
    """A frozen view of :class:`IOStats` used to measure deltas."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    frees: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            reads=self.reads - other.reads,
            writes=self.writes - other.writes,
            allocations=self.allocations - other.allocations,
            frees=self.frees - other.frees,
        )


@dataclass
class IOMeter:
    """Context manager measuring the I/Os performed inside a ``with`` block.

    Example
    -------
    >>> stats = IOStats()
    >>> with IOMeter(stats) as meter:
    ...     stats.record_read(3)
    >>> meter.delta.reads
    3
    """

    stats: IOStats
    delta: IOSnapshot = field(default_factory=IOSnapshot)
    _start: IOSnapshot = field(default_factory=IOSnapshot)

    def __enter__(self) -> "IOMeter":
        self._start = self.stats.snapshot()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.delta = self.stats.snapshot() - self._start
