"""Priority queues with attrition (PQAs).

The paper's independent contribution (Section 4.1) is an I/O-efficient
*catenable* PQA: besides ``FindMin``, ``DeleteMin`` and ``InsertAndAttrite``
it supports ``CatenateAndAttrite`` merging two queues while attriting every
element of the first queue that is >= the minimum of the second, all in O(1)
worst-case I/Os and O(1/b) amortized I/Os for records of ``b`` elements.

Two implementations are provided:

* :class:`SundarPQA` -- the classic internal-memory PQA of Sundar (1989),
  used as the correctness oracle and the "previous work" baseline.
* :class:`IOCPQA` -- the external-memory catenable PQA.  It keeps the
  surviving elements (which always form a strictly increasing sequence in
  queue order) in immutable block-sized records organised as a persistent
  concatenation tree whose descriptors cache minima, so catenation and
  insertion perform no block transfers at all, attrition of partial records
  is done lazily through a *cap* value, and DeleteMin touches each record
  block only once.  See DESIGN.md §5 for how this relates to the paper's
  deque-of-records formulation.
"""

from repro.pqa.sundar import SundarPQA
from repro.pqa.iocpqa import IOCPQA
from repro.pqa.checker import check_queue_invariants, queue_elements

__all__ = ["SundarPQA", "IOCPQA", "check_queue_invariants", "queue_elements"]
