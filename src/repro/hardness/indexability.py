"""Indexability-model analysis (Theorem 5, Lemma 9, Theorem 7).

The indexability model of Hellerstein et al. abstracts a structure as an
assignment of data items to size-B blocks (possibly with redundancy); the
cost of a query is the minimum number of blocks covering its answer.  The
workload of Lemma 8 forces every layout of bounded redundancy to pay
polynomially many blocks on some query, which is the content of Theorem 5.

:class:`IndexabilityAnalyzer` measures that quantity for concrete layouts
(x-sorted, y-sorted, Z-order) so the lower-bound benchmark can show the
blow-up empirically, alongside the closed-form bounds below.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.core.point import Point
from repro.hardness.chazelle_liu import ChazelleLiuWorkload


def indexability_query_lower_bound(n: int, block_size: int, redundancy: float) -> float:
    """The Omega((n/B)^{1/(25c)}) bound of Lemma 9 for space ``c * n/B`` blocks."""
    blocks = max(2.0, n / max(1, block_size))
    exponent = 1.0 / (25.0 * max(1.0, redundancy))
    return blocks ** exponent


def pointer_machine_space_lower_bound(n: int, gamma: float = 1.0) -> float:
    """The Omega(n log n / log log n) space bound of Theorem 7."""
    if n < 4:
        return float(n)
    return n * math.log2(n) / math.log2(math.log2(n))


@dataclass
class LayoutReport:
    """Blocks-per-query statistics of one layout against the workload."""

    name: str
    blocks_used: int
    min_blocks_per_query: int
    avg_blocks_per_query: float
    max_blocks_per_query: int
    optimal_blocks_per_query: float  # ceil(omega / B): the k/B ideal


class IndexabilityAnalyzer:
    """Evaluate concrete block layouts against a Lemma 8 workload."""

    def __init__(self, workload: ChazelleLiuWorkload, block_size: int) -> None:
        self.workload = workload
        self.block_size = block_size

    # ------------------------------------------------------------------
    # Layouts
    # ------------------------------------------------------------------
    def layout_by(self, key: Callable[[Point], float]) -> Dict[int, int]:
        """Assign each point (by ident) to a block id under a sort order."""
        ordered = sorted(self.workload.points, key=key)
        return {
            point.ident: index // self.block_size
            for index, point in enumerate(ordered)
        }

    def x_sorted_layout(self) -> Dict[int, int]:
        """Points packed into blocks by increasing x."""
        return self.layout_by(lambda p: p.x)

    def y_sorted_layout(self) -> Dict[int, int]:
        """Points packed into blocks by increasing y."""
        return self.layout_by(lambda p: p.y)

    def z_order_layout(self) -> Dict[int, int]:
        """Points packed by Morton (Z-order) code, a common spatial layout."""

        def morton(point: Point) -> int:
            x, y = int(point.x), int(point.y)
            code = 0
            for bit in range(32):
                code |= ((x >> bit) & 1) << (2 * bit)
                code |= ((y >> bit) & 1) << (2 * bit + 1)
            return code

        return self.layout_by(morton)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, name: str, layout: Dict[int, int]) -> LayoutReport:
        """Blocks-per-query statistics of ``layout`` over all workload queries."""
        per_query: List[int] = []
        for query in self.workload.queries:
            blocks = {layout[point.ident] for point in query.expected}
            per_query.append(len(blocks))
        omega = self.workload.omega
        return LayoutReport(
            name=name,
            blocks_used=len(set(layout.values())),
            min_blocks_per_query=min(per_query),
            avg_blocks_per_query=sum(per_query) / len(per_query),
            max_blocks_per_query=max(per_query),
            optimal_blocks_per_query=math.ceil(omega / self.block_size),
        )

    def evaluate_standard_layouts(self) -> List[LayoutReport]:
        """Reports for the x-sorted, y-sorted and Z-order layouts."""
        return [
            self.evaluate("x-sorted", self.x_sorted_layout()),
            self.evaluate("y-sorted", self.y_sorted_layout()),
            self.evaluate("z-order", self.z_order_layout()),
        ]

    def access_overhead(self, layout: Dict[int, int]) -> float:
        """The access overhead ``A``: worst-case blocks x B / output size."""
        worst = 0.0
        for query in self.workload.queries:
            blocks = {layout[point.ident] for point in query.expected}
            worst = max(worst, len(blocks) * self.block_size / len(query.expected))
        return worst

    def theorem_space_bound(self) -> float:
        """The (lam/12) * omega^lam / B block bound of the indexability theorem."""
        return (
            self.workload.lam / 12.0 * (self.workload.omega ** self.workload.lam)
            / self.block_size
        )
