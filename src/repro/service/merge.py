"""Cross-shard and delta skyline merging.

Correctness of the shard merge (top-open semantics generalise to every
variant): shards partition the x-axis, so for a candidate ``p`` from shard
``i`` every potential dominator with strictly larger x lives in shard
``i`` itself or in a shard to the right.  Within the shard, ``p`` already
survived the local skyline computation.  Across shards the x-coordinate of
any right-shard point exceeds ``p.x``, hence it dominates ``p`` exactly
when its y is ``>= p.y``.  The highest point of ``Q ∩ shard_j`` is never
locally dominated, so it appears in shard ``j``'s local result -- meaning
the running maximum y over the local results of shards ``> i`` equals the
maximum y over *all* their points inside ``Q``.  A candidate therefore
survives globally iff its y strictly exceeds that running maximum, which
is what :func:`merge_shard_skylines` checks in one right-to-left pass.

Execution of both merges is columnar (:mod:`repro.core.columns`): the
per-object lambda sort became an argsort over parallel coordinate arrays
plus a vectorized running-max scan, with ``Point`` objects materialised
only at the response boundary.  The ``*_objects`` reference
implementations below are the semantics the kernels must reproduce --
``benchmarks/bench_hotpath.py`` times one against the other and
``tests/test_hotpath.py`` holds them identical under hypothesis.  All of
this is in-memory compute over resident candidates: no block transfers
happen on either path, so charging is untouched (see DESIGN.md,
"Columnar kernels and the charging boundary").
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.columns import (
    ColumnsLike,
    merge_skyline_sources,
    sweep_concatenated,
)
from repro.core.point import Point


def merge_shard_skylines(per_shard: Sequence[Sequence[Point]]) -> List[Point]:
    """Merge per-shard skylines (in increasing-x shard order) into one.

    Each element of ``per_shard`` must be the skyline of one shard's points
    inside the query, sorted by increasing x.  One right-to-left pass keeps
    a candidate iff its y strictly exceeds the maximum y seen in shards to
    its right; the result is the global skyline, sorted by increasing x.
    Because the concatenation of the inputs is already increasing-x sorted,
    the columnar kernel needs no sort at all -- one suffix-max scan.
    """
    return sweep_concatenated(per_shard)


def merge_shard_skylines_objects(
    per_shard: Sequence[Sequence[Point]],
) -> List[Point]:
    """Reference object-path shard merge (see :func:`merge_shard_skylines`).

    The running maximum is tracked inside the survivor scan itself -- each
    shard's results are visited exactly once per pass, with no second
    ``max()`` rescan.
    """
    parts: List[List[Point]] = []
    best_y = float("-inf")
    for results in reversed(per_shard):
        if not results:
            continue
        surviving: List[Point] = []
        top = best_y
        for p in results:
            if p.y > best_y:
                surviving.append(p)
            if p.y > top:
                top = p.y
        if surviving:
            parts.append(surviving)
        best_y = top
    parts.reverse()
    return [p for part in parts for p in part]


def merge_component_skylines(sources: Sequence[ColumnsLike]) -> List[Point]:
    """Merge candidate sets from overlapping components into one skyline.

    This is :func:`merge_shard_skylines` generalised from the x-disjoint
    shard partition to ``k + 1`` arbitrary sources -- the base-shard merge,
    one local answer per immutable level component, and the in-memory
    memtable candidates -- whose x-ranges overlap freely.  The same
    right-to-left running-max-y argument applies once the pass runs over
    the *union* in decreasing-x order: with globally distinct coordinates
    (the service's general-position invariant), a candidate survives in
    the union's skyline iff its y strictly exceeds the maximum y among all
    candidates of strictly larger x.  Sources need not be skylines
    themselves -- points dominated within their own source are dominated in
    the union too, so the sweep drops them the same way.  Every source
    must contain only points inside the query rectangle; a source may be a
    plain point sequence or a :class:`repro.core.columns.PointColumns`
    candidate set (components hand their columns over directly, skipping
    per-point extraction).  Returns the skyline sorted by increasing x.
    """
    return merge_skyline_sources(sources)


def merge_component_skylines_objects(
    sources: Sequence[Sequence[Point]],
) -> List[Point]:
    """Reference object-path component merge (lambda-keyed sort + sweep)."""
    candidates = [p for source in sources for p in source]
    candidates.sort(key=lambda p: (-p.x, -p.y))
    best_y = float("-inf")
    kept: List[Point] = []
    for point in candidates:
        if point.y > best_y:
            kept.append(point)
            best_y = point.y
    kept.reverse()
    return kept


def merge_with_delta(
    static_result: Sequence[Point], delta_candidates: Iterable[Point]
) -> List[Point]:
    """Fold pending (in-memory) inserts into a merged static skyline.

    ``static_result`` is the skyline of the static points inside the query;
    ``delta_candidates`` are the pending inserts inside the query.  The
    skyline of the union of the two small sets equals the skyline of the
    full point set inside the query: any static point missing from
    ``static_result`` is dominated by a member of it, and that member is in
    the union.

    ``static_result`` arrives sorted by increasing x (and, being a
    skyline, by decreasing y), so only the delta candidates are sorted;
    the two decreasing-x streams are then folded with the same
    running-max-y sweep the component merge uses -- no re-sort of the
    already-sorted static result, no full :func:`~repro.core.skyline
    .skyline` recomputation.
    """
    candidates = sorted(delta_candidates, key=lambda p: (-p.x, -p.y))
    if not candidates:
        return list(static_result)
    kept_rev: List[Point] = []
    best_y = float("-inf")
    ci, cn = 0, len(candidates)
    for sp in reversed(static_result):
        # Drain delta candidates with larger x (ties: larger y) first so
        # the combined stream is visited in decreasing-x order.
        while ci < cn and (
            candidates[ci].x > sp.x
            or (candidates[ci].x == sp.x and candidates[ci].y > sp.y)
        ):
            if candidates[ci].y > best_y:
                kept_rev.append(candidates[ci])
                best_y = candidates[ci].y
            ci += 1
        if sp.y > best_y:
            kept_rev.append(sp)
            best_y = sp.y
    while ci < cn:
        if candidates[ci].y > best_y:
            kept_rev.append(candidates[ci])
            best_y = candidates[ci].y
        ci += 1
    kept_rev.reverse()
    return kept_rev
