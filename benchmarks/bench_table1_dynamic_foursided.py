"""Table 1, row 7 / Theorem 6 (dynamic part): 4-sided queries under updates.

Claim: the 4-sided structure remains queryable in O((n/B)^eps + k/B) I/Os
while supporting updates in O(log(n/B)) amortized I/Os.  The experiment
interleaves insertions and deletions with queries and reports the amortized
update cost alongside the query cost.
"""

from __future__ import annotations

import math

import pytest

from repro.bench import BenchmarkTable, measure_queries
from repro.bench.harness import make_storage
from repro.structures.foursided import FourSidedStructure, four_sided_query_bound
from repro.workloads import four_sided_queries, uniform_points

BLOCK_SIZE = 64
SWEEP_N = [512, 1024, 2048]
UPDATES = 128
QUERIES = 8
EPSILON = 0.5


def run_sweep() -> BenchmarkTable:
    table = BenchmarkTable("Table 1 row 7 -- dynamic 4-sided range skyline")
    for n in SWEEP_N:
        storage = make_storage(block_size=BLOCK_SIZE)
        base = uniform_points(n, seed=n)
        structure = FourSidedStructure(storage, base, epsilon=EPSILON)

        extra = uniform_points(UPDATES, seed=n + 1)
        before = storage.snapshot()
        for index, point in enumerate(extra):
            structure.insert(point)
            if index % 4 == 3:
                structure.delete(base[index])
        update_io = (storage.snapshot() - before).total / (UPDATES + UPDATES // 4)

        live = structure.points
        queries = four_sided_queries(live, QUERIES, selectivity=0.4, seed=n)
        query_io, avg_k = measure_queries(storage, structure, queries)
        table.add(
            measured_io=query_io,
            predicted=four_sided_query_bound(len(live), int(avg_k), BLOCK_SIZE, EPSILON),
            n=n,
            B=BLOCK_SIZE,
            avg_k=round(avg_k, 1),
            amortized_update_io=round(update_io, 2),
            update_bound=round(math.log2(max(2, n // BLOCK_SIZE)) + 1, 2),
        )
    return table


@pytest.fixture(scope="module")
def sweep_table() -> BenchmarkTable:
    return run_sweep()


def test_dynamic_foursided_update_and_query(benchmark, sweep_table, capsys):
    """Amortized update I/Os stay logarithmic and queries keep their shape."""
    with capsys.disabled():
        sweep_table.show()
    assert sweep_table.max_ratio_spread() < 15.0
    for row in sweep_table.rows:
        assert row.params["amortized_update_io"] < 200 * row.params["update_bound"]

    storage = make_storage(block_size=BLOCK_SIZE)
    points = uniform_points(512, seed=17)
    structure = FourSidedStructure(storage, points, epsilon=EPSILON)
    extra = uniform_points(8, seed=18)
    benchmark(lambda: [structure.insert(p) for p in extra])
