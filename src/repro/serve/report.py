"""Serving-tier responses: every served request carries a ServingReport.

The engine's :class:`~repro.engine.report.ExecutionReport` explains what a
request cost *inside* the storage stack (its exact block-transfer ledger
delta); the :class:`ServingReport` explains what happened to it *in front
of* the stack -- how long it queued, how long its batch executed, how many
concurrent callers it was coalesced with, and whether admission control
shed it or its deadline expired first.  Together the two reports account
for a request end to end: ``queue_wait_s + service_s`` is the latency the
caller observed, and the block counts are the same currency every
benchmark in the repo reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.point import Point
from repro.engine.report import ExecutionReport, QueryResult, UpdateResult

LANE_READ = "read"
LANE_WRITE = "write"
LANE_NOTIFY = "notify"


@dataclass(frozen=True)
class ServingReport:
    """How the serving runtime handled one submission.

    Attributes
    ----------
    lane:
        ``"read"`` (gathered, coalesced, batch-executed), ``"write"``
        (the single serialized writer lane), or ``"notify"`` (the
        subscription delta lane -- reports attached to terminal
        subscription failures).
    queue_wait_s:
        Seconds between submission and the start of execution -- the
        admission/backpressure cost the bounded queues keep bounded.
    service_s:
        Seconds the executing call took.  For a coalesced read this is
        the *batch's* execution time, shared by every request it served.
    coalesce_fanin:
        How many concurrent submissions this execution answered (1 = the
        request ran alone; ``n > 1`` means ``n - 1`` other callers were
        served from the same computation).
    batch_size:
        Submissions gathered into the executing batch (reads; 1 on the
        writer lane).
    batch_blocks:
        The executing batch's block-transfer ledger delta.  On a
        coalesced read the per-request ``ExecutionReport`` carries zero
        blocks (the batch cannot be split per request); this field keeps
        the shared charge visible next to each response.
    shed:
        Admission control rejected the submission (it never executed).
    timed_out:
        The submission's deadline expired while it was still queued (it
        never executed).
    pinned_version:
        The server's writes-applied counter at the moment this request
        executed -- the write version a read batch was pinned against.
        Concurrent read batches under ``config.read_concurrency > 1``
        all pin the same value between two writes (writes serialize on
        the gate's write side), which is the snapshot-isolation statement
        a response can carry home.  ``None`` on reports produced before
        execution (sheds, queue timeouts).
    """

    lane: str
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    coalesce_fanin: int = 1
    batch_size: int = 1
    batch_blocks: int = 0
    shed: bool = False
    timed_out: bool = False
    pinned_version: Optional[int] = None

    @property
    def latency_s(self) -> float:
        """End-to-end seconds the caller waited: queue plus service."""
        return self.queue_wait_s + self.service_s


@dataclass(frozen=True)
class ServedQuery:
    """A query response: the engine result plus its serving report."""

    result: QueryResult
    serving: ServingReport

    @property
    def points(self) -> List[Point]:
        return self.result.points

    @property
    def report(self) -> ExecutionReport:
        """The engine-side :class:`~repro.engine.report.ExecutionReport`."""
        return self.result.report

    def __len__(self) -> int:
        return len(self.result.points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.result.points)


@dataclass(frozen=True)
class ServedUpdate:
    """An update response: the engine result plus its serving report."""

    result: UpdateResult
    serving: ServingReport

    @property
    def applied(self) -> bool:
        return self.result.applied

    @property
    def report(self) -> ExecutionReport:
        """The engine-side :class:`~repro.engine.report.ExecutionReport`."""
        return self.result.report
