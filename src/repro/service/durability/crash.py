"""Kill-at-any-prefix crash simulation over a :class:`DurableStore`.

The durability contract of the service tier is *prefix consistency*: after
a crash, exactly the durable prefix of the write-ahead log survives --
every group-committed record, no in-memory tail, and a snapshot only if the
compaction record anchoring it made it to disk.  :func:`crashed_copy`
materialises that contract: it deep-copies a live store and truncates the
copy to its first ``prefix`` durable records, dropping every manifest whose
``installed_lsn`` lies beyond the kill point.  :class:`CrashSimulator`
iterates the copies for *every* prefix, which is how the property tests in
``tests/test_durability.py`` prove that ``SkylineService.open`` recovers
the exact pre-crash state no matter where the process dies.

Truncating inside a block uses :meth:`repro.em.DiskModel.poke` (uncharged
simulator surgery): it models the physical reality that the block image at
the kill point held only the records committed so far.  With
``wal_group_commit = 1`` every block holds one record and truncation is
block-exact, so the simulation degenerates to plain block-level loss.
"""

from __future__ import annotations

import copy
from typing import Iterator, List, Tuple

from repro.em.disk import BlockId
from repro.service.durability.store import DurableStore


def crashed_copy(store: DurableStore, prefix: int) -> DurableStore:
    """A deep copy of ``store`` as a crash at WAL-record ``prefix`` leaves it.

    The copy keeps the first ``prefix`` durable records
    (``store.wal_base <= prefix <= store.wal_durable``; history below
    ``wal_base`` was dropped by :meth:`DurableStore.reclaim` and those
    kill points can no longer be replayed) and every manifest installed at
    or before the surviving LSN; the original store is untouched, so one
    live run can be crashed at every prefix independently.
    """
    if not store.wal_base <= prefix <= store.wal_durable:
        raise ValueError(
            f"prefix must be in [{store.wal_base}, {store.wal_durable}] "
            f"(history below wal_base has been reclaimed), got {prefix}"
        )
    clone = copy.deepcopy(store)
    kept: List[Tuple[BlockId, int]] = []
    dropped: List[BlockId] = []
    first_lsn = clone.wal_base
    for block_id, count in clone.wal_blocks:
        if first_lsn + count <= prefix:
            kept.append((block_id, count))
        elif prefix > first_lsn:
            # The kill happened mid-group: only the durable head of this
            # block image survived.  Surgery, not a modelled transfer.
            take = prefix - first_lsn
            # repro: uncharged-io(crash injection truncates the torn WAL block in place -- simulator surgery modelling data loss, not a transfer the recovering node performs)
            survivors = list(clone.storage.disk.peek(block_id))[:take]
            # repro: uncharged-io(writing back the truncated image is the same injected surgery; recovery pays its own charged reads when it replays)
            clone.storage.disk.poke(block_id, survivors)
            kept.append((block_id, take))
        else:
            dropped.append(block_id)
        first_lsn += count
    clone.wal_blocks = kept
    clone.wal_durable = prefix
    # LSNs are positional, so the k-th record carries lsn == k: a manifest
    # survives iff its anchoring record does.  Blocks referenced by no
    # surviving directory entry are freed (a real implementation would
    # garbage-collect unreachable blocks at mount), so the recovered
    # store's space accounting stays honest and reclaimable.
    for manifest in clone.manifests:
        if manifest.installed_lsn > prefix:
            for shard_ids in manifest.shard_blocks:
                dropped.extend(shard_ids)
            dropped.extend(manifest.extra_blocks())
            if manifest.block_id is not None:
                dropped.append(manifest.block_id)
    clone.manifests = [m for m in clone.manifests if m.installed_lsn <= prefix]
    for block_id in dropped:
        clone.storage.free(block_id)
    return clone


class CrashSimulator:
    """Enumerate crashed copies of a store at every durable-record prefix."""

    def __init__(self, store: DurableStore) -> None:
        self.store = store

    def prefixes(self) -> Iterator[Tuple[int, DurableStore]]:
        """Yield ``(prefix, crashed store)`` for every replayable prefix
        (``wal_base .. durable``; 0 .. durable on an unreclaimed store)."""
        for prefix in range(self.store.wal_base, self.store.wal_durable + 1):
            yield prefix, crashed_copy(self.store, prefix)

    def __iter__(self) -> Iterator[Tuple[int, DurableStore]]:
        return self.prefixes()
