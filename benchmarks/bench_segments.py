"""Section 2.2 / Lemma 2: the segment reduction Sigma(P).

Claims: Sigma(P) is computed from x-sorted input in O(n/B) I/Os, and the
resulting segment set is nesting and monotonic.  The sweep measures the
I/Os of the streaming computation against the scan bound n/B.
"""

from __future__ import annotations

import pytest

from repro.bench import BenchmarkTable
from repro.bench.harness import make_storage
from repro.em.file import EMFile
from repro.segments import compute_sigma, compute_sigma_emfile, is_monotonic, is_nesting
from repro.workloads import anticorrelated_points, uniform_points

BLOCK_SIZE = 64
SWEEP = [("uniform", 1024), ("uniform", 4096), ("anticorrelated", 4096)]


def run_sweep() -> BenchmarkTable:
    table = BenchmarkTable("Section 2.2 -- computing Sigma(P) in O(n/B) I/Os")
    for distribution, n in SWEEP:
        generator = uniform_points if distribution == "uniform" else anticorrelated_points
        points = sorted(generator(n, seed=n), key=lambda p: p.x)
        storage = make_storage(block_size=BLOCK_SIZE)
        source = EMFile.from_records(storage, points, name="points")
        before = storage.snapshot()
        _, count = compute_sigma_emfile(storage, source)
        io = (storage.snapshot() - before).total
        segments = compute_sigma(points)
        table.add(
            measured_io=io,
            predicted=2 * max(1, n // BLOCK_SIZE),
            dataset=distribution,
            n=n,
            B=BLOCK_SIZE,
            segments=count,
            nesting=is_nesting(segments),
            monotonic=is_monotonic(segments, samples=16),
        )
    return table


@pytest.fixture(scope="module")
def sweep_table() -> BenchmarkTable:
    return run_sweep()


def test_sigma_is_linear_and_well_formed(benchmark, sweep_table, capsys):
    """Sigma(P) costs O(n/B) I/Os and satisfies Lemma 2 on every dataset."""
    with capsys.disabled():
        sweep_table.show()
    for row in sweep_table.rows:
        assert row.params["nesting"] and row.params["monotonic"]
        assert row.ratio is not None and row.ratio < 3.0

    points = sorted(uniform_points(1024, seed=9), key=lambda p: p.x)
    benchmark(lambda: compute_sigma(points))
