"""Async serving runtime in front of :class:`repro.engine.SkylineEngine`.

The engine answers one caller at a time; this package turns it into a
service for many.  :class:`SkylineServer` accepts submissions from sync
callers and asyncio coroutines, gathers reads within a small window,
coalesces identical requests across callers onto one computation, runs
each batch's per-shard worklists on persistent uid-keyed workers
(:class:`ShardWorkerPool`), serializes writes on a dedicated lane, and
applies admission control -- bounded queues with block or shed
backpressure plus per-request deadlines -- so tail latency stays bounded
past saturation.  Every response pairs the engine's block-exact
:class:`~repro.engine.report.ExecutionReport` with a
:class:`ServingReport`; ``server.describe()`` reports throughput,
latency percentiles, queue depths, shed rate and the worker-pool state.

>>> from repro.engine import SkylineEngine
>>> from repro.serve import SkylineServer
>>> engine = SkylineEngine.sharded(points)
>>> with SkylineServer(engine) as server:
...     served = server.query(RangeQuery(x_hi=0.5))
...     served.points, served.serving.queue_wait_s
"""

from repro.serve.config import BACKPRESSURE_POLICIES, ServerConfig
from repro.serve.errors import (
    DeadlineExceeded,
    Overloaded,
    ServerClosed,
    ServingError,
)
from repro.serve.metrics import ServerMetrics, percentile
from repro.serve.report import (
    LANE_NOTIFY,
    LANE_READ,
    LANE_WRITE,
    ServedQuery,
    ServedUpdate,
    ServingReport,
)
from repro.serve.server import ServerSubscription, SkylineServer
from repro.serve.workers import ShardWorkerPool, install_worker_pool

__all__ = [
    "BACKPRESSURE_POLICIES",
    "DeadlineExceeded",
    "LANE_NOTIFY",
    "LANE_READ",
    "LANE_WRITE",
    "Overloaded",
    "ServedQuery",
    "ServedUpdate",
    "ServerClosed",
    "ServerConfig",
    "ServerMetrics",
    "ServerSubscription",
    "ServingError",
    "ServingReport",
    "ShardWorkerPool",
    "SkylineServer",
    "install_worker_pool",
    "percentile",
]
