"""Table 1, row 1 / Theorem 1: static top-open queries in R^2.

Claim: O(n/B) space, O(log_B n + k/B) query I/Os, linear-I/O (SABE)
construction from x-sorted input.  The table sweeps n and reports the
measured I/Os per query next to the log_B n + k/B prediction; the ratio
column should stay within a small constant band as n grows.
"""

from __future__ import annotations

import pytest

from repro.bench import BenchmarkTable, measure_queries
from repro.bench.harness import make_storage
from repro.structures.topopen_static import StaticTopOpenStructure, top_open_query_bound
from repro.workloads import top_open_queries, uniform_points

BLOCK_SIZE = 64
SWEEP_N = [512, 1024, 2048, 4096]
QUERIES_PER_N = 12


def run_sweep() -> BenchmarkTable:
    table = BenchmarkTable("Table 1 row 1 -- static top-open (R^2)")
    for n in SWEEP_N:
        storage = make_storage(block_size=BLOCK_SIZE)
        points = sorted(uniform_points(n, seed=n), key=lambda p: p.x)
        structure = StaticTopOpenStructure.build_sorted(storage, points)
        queries = top_open_queries(points, QUERIES_PER_N, selectivity=0.3, seed=n)
        io_per_query, avg_k = measure_queries(storage, structure, queries)
        table.add(
            measured_io=io_per_query,
            predicted=top_open_query_bound(n, int(avg_k), BLOCK_SIZE),
            n=n,
            B=BLOCK_SIZE,
            avg_k=round(avg_k, 1),
            build_io=structure.construction_io,
            space_blocks=structure.block_count(),
        )
    return table


@pytest.fixture(scope="module")
def sweep_table() -> BenchmarkTable:
    return run_sweep()


def test_topopen_static_query_shape(benchmark, sweep_table, capsys):
    """Measured query I/Os track log_B n + k/B within a constant factor."""
    with capsys.disabled():
        sweep_table.show()
    assert sweep_table.max_ratio_spread() < 8.0

    storage = make_storage(block_size=BLOCK_SIZE)
    points = sorted(uniform_points(1024, seed=7), key=lambda p: p.x)
    structure = StaticTopOpenStructure.build_sorted(storage, points)
    query = top_open_queries(points, 1, selectivity=0.3, seed=7)[0]
    benchmark(lambda: structure.query(query))


def test_topopen_static_space_is_linear(sweep_table):
    """Space in blocks grows linearly with n (within a constant factor)."""
    rows = sweep_table.rows
    first, last = rows[0], rows[-1]
    n_growth = last.params["n"] / first.params["n"]
    space_growth = last.params["space_blocks"] / max(1, first.params["space_blocks"])
    assert space_growth < 3.0 * n_growth
