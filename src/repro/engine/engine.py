"""``SkylineEngine``: the one front door for the whole stack.

The engine is a thin, backend-agnostic request/response layer: requests
go in (:class:`~repro.engine.requests.QueryRequest` /
:class:`~repro.engine.requests.UpdateRequest`), and every response comes
back with a per-request :class:`~repro.engine.report.ExecutionReport`
whose block counts are that request's exact ledger delta.  ``explain``
returns the :class:`~repro.engine.plan.QueryPlan` -- structure choice
plus the paper's bound instantiated with the backend's actual ``B`` and
``n`` -- without executing anything.

Accounting invariant
--------------------
The engine snapshots the backend ledger around every call, so::

    attributed_io() + maintenance_io() == backend ledger total - build_io

holds after any sequence of queries, updates and cache drops served
through the engine (compactions an update triggers are charged to that
update's report; cache hits charge 0; cache drops flush dirty blocks
into ``maintenance_io``).  ``tests/test_engine.py`` asserts the equality
exactly on both backends.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis import sanitize as _sanitize
from repro.analysis.locks import tracked_lock
from repro.core.point import Point
from repro.core.queries import RangeQuery
from repro.em.config import EMConfig
from repro.em.counters import IOSnapshot
from repro.engine.backends import (
    Backend,
    LocalIndexBackend,
    ShardedServiceBackend,
)
from repro.engine.plan import QueryPlan
from repro.engine.report import (
    KIND_BATCH,
    KIND_QUERY,
    ExecutionReport,
    QueryResult,
    UpdateResult,
)
from repro.engine.requests import QueryRequest, UpdateRequest
from repro.service.config import ServiceConfig
from repro.service.durability import DurableStore

Request = Union[QueryRequest, UpdateRequest]
Response = Union[QueryResult, UpdateResult]
QueryLike = Union[QueryRequest, RangeQuery]


def _paginate(
    points: List[Point], cursor: Optional[float], limit: Optional[int]
) -> Tuple[List[Point], Optional[float]]:
    """Apply the cursor (strictly-after-x) and limit; return the page and
    the resume token (``None`` when the page ends the result).

    Results are in increasing x-order, so a page is a prefix of the
    remaining suffix and the last point's x is a valid resume token.
    """
    if cursor is not None:
        points = [p for p in points if p.x > cursor]
    if limit is None or len(points) <= limit:
        return points, None
    page = points[:limit]
    return page, page[-1].x


class SkylineEngine:
    """Typed request/response facade over a pluggable :class:`Backend`."""

    def __init__(self, backend: Backend) -> None:
        self.backend = backend
        # Ledger value when the engine attached: everything before it
        # (index construction, recovery) is build cost, not request cost.
        self.build_io = backend.io_total()
        self.requests_served = 0
        self._attributed = 0
        # Ledger charges from engine-level maintenance (cache drops flush
        # dirty blocks) -- real transfers, but not any one request's.
        self._maintenance = 0
        # Ledger traffic that bypassed the engine (callers driving the
        # raw service/index next to an attached engine).  Tracked by the
        # report-partition sanitizer so the identity stays exact over
        # engine-served traffic; see :meth:`_san_pre`.
        self._external_io = 0
        # Group accounting for snapshot-concurrent read batches
        # (:meth:`query_batch_shared`): the books lock serializes only
        # the partition bookkeeping at group open/close -- the batches
        # themselves run concurrently between the two.
        self._books = tracked_lock("engine.books")
        self._shared_readers = 0
        self._group_before: Optional[IOSnapshot] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def local(
        cls,
        points: Iterable[Point],
        *,
        dynamic: bool = False,
        epsilon: float = 0.5,
        em_config: Optional[EMConfig] = None,
    ) -> "SkylineEngine":
        """An engine over a single :class:`repro.RangeSkylineIndex`."""
        return cls(
            LocalIndexBackend.build(
                list(points), dynamic=dynamic, epsilon=epsilon, em_config=em_config
            )
        )

    @classmethod
    def sharded(
        cls,
        points: Iterable[Point],
        config: Optional[ServiceConfig] = None,
        store: Optional[DurableStore] = None,
        **overrides: object,
    ) -> "SkylineEngine":
        """An engine over a :class:`repro.service.SkylineService`."""
        return cls(
            ShardedServiceBackend.build(
                list(points), config, store=store, **overrides
            )
        )

    @classmethod
    def open(
        cls,
        store: DurableStore,
        config: Optional[ServiceConfig] = None,
        **overrides: object,
    ) -> "SkylineEngine":
        """Durability passthrough: recover the service ``store`` holds.

        Recovery I/O is part of :attr:`build_io` (the engine attaches
        after it), and the recovery cost breakdown stays available via
        ``engine.describe()["backend"]["durability_detail"]["recovery"]``.
        """
        return cls(ShardedServiceBackend.open(store, config, **overrides))

    # ------------------------------------------------------------------
    # Report-partition sanitizer (active under ``REPRO_SANITIZE=1``)
    # ------------------------------------------------------------------
    def _san_pre(self) -> None:
        """Settle the ledger before serving: any positive gap between the
        backend ledger and the engine's books is traffic that bypassed
        the engine -- recorded as external, excluded from blame.  A
        *negative* gap means the engine attributed transfers the ledger
        never saw: corrupted bookkeeping, reported immediately."""
        if not _sanitize.partition_checks:
            return
        gap = (
            self.backend.io_total()
            - self.build_io
            - self._attributed
            - self._maintenance
            - self._external_io
        )
        if gap > 0:
            self._external_io += gap
        elif gap < 0:
            raise _sanitize.PartitionError(
                f"engine books exceed the backend ledger by {-gap} blocks "
                f"(attributed={self._attributed}, "
                f"maintenance={self._maintenance}, "
                f"external={self._external_io}, build={self.build_io}, "
                f"ledger={self.backend.io_total()}) -- a report charged "
                "transfers the ledger never recorded"
            )

    def _san_settle(self) -> None:
        """After serving: ``attributed + maintenance (+ external) ==
        total - build`` must hold *exactly* -- the reports partition the
        ledger."""
        if not _sanitize.partition_checks:
            return
        gap = (
            self.backend.io_total()
            - self.build_io
            - self._attributed
            - self._maintenance
            - self._external_io
        )
        if gap != 0:
            raise _sanitize.PartitionError(
                f"report partition violated by {gap} blocks after serving: "
                f"attributed={self._attributed} + "
                f"maintenance={self._maintenance} + "
                f"external={self._external_io} != "
                f"ledger={self.backend.io_total()} - build={self.build_io}"
            )

    def _san_post(self, report: ExecutionReport) -> None:
        """Component sanity of one report, then the partition identity."""
        if not _sanitize.partition_checks:
            return
        if report.reads < 0 or report.writes < 0 or report.maintenance_blocks < 0:
            raise _sanitize.PartitionError(
                f"report carries a negative component: reads={report.reads}, "
                f"writes={report.writes}, "
                f"maintenance_blocks={report.maintenance_blocks} "
                f"({report.kind}/{report.variant} on {report.backend})"
            )
        self._san_settle()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(request: QueryLike) -> QueryRequest:
        if isinstance(request, QueryRequest):
            return request
        return QueryRequest(rect=request)

    def explain(self, request: QueryLike) -> QueryPlan:
        """The plan -- structure choice and instantiated paper bound --
        without executing the request."""
        return self.backend.plan(self._coerce(request))

    def query(self, request: QueryLike) -> QueryResult:
        """Execute one read; returns the page plus plan and report."""
        req = self._coerce(request)
        plan = self.backend.plan(req)
        self._san_pre()
        before = self.backend.snapshot()
        # repro: calls(ShardedServiceBackend.execute)
        points, trace = self.backend.execute(req.rect, req.consistency)
        delta = self.backend.snapshot() - before
        k = len(points)
        page, next_cursor = _paginate(points, req.cursor, req.limit)
        report = ExecutionReport(
            backend=self.backend.name,
            kind=KIND_QUERY,
            variant=req.variant,
            structure=plan.structure,
            reads=delta.reads,
            writes=delta.writes,
            cache_hit=trace.cache_hit,
            shards_visited=trace.shards_visited,
            shards_pruned=trace.shards_pruned,
            tombstone_fallback=trace.tombstone_fallback,
            coalesced=trace.coalesced,
            result_size=k,
            predicted_io=plan.predicted_io(k),
        )
        self.requests_served += 1
        self._attributed += report.blocks
        self._san_post(report)
        return QueryResult(
            points=page,
            total_results=k,
            next_cursor=next_cursor,
            plan=plan,
            report=report,
        )

    def query_many(self, requests: Sequence[QueryLike]) -> List[QueryResult]:
        """Execute a batch of reads, one result (with report) each.

        Requests are served in order through :meth:`query`, so every
        report keeps its exact per-request ledger delta; repeated
        rectangles still collapse onto the sharded backend's result cache
        (the batch-level coalescing a raw ``SkylineService.query_many``
        performs shows up here as cache hits from the second occurrence
        on).  When batch throughput matters more than per-request
        attribution, use :meth:`query_batch`, which keeps the backend's
        native batch executor (worklists, coalescing, ``parallelism``
        thread fan-out).
        """
        return [self.query(request) for request in requests]

    def query_batch(
        self, requests: Sequence[QueryLike]
    ) -> Tuple[List[QueryResult], ExecutionReport]:
        """Execute a batch through the backend's *native* batch executor.

        Unlike :meth:`query_many`, the whole batch runs as one backend
        call, so per-shard worklist grouping, in-batch duplicate
        coalescing and ``ServiceConfig.parallelism`` thread fan-out all
        apply.  The trade-off is attribution granularity: the ledger
        delta of the batch cannot be split per request (workers interleave
        on shared structures), so each per-request report carries its
        trace flags with zero blocks and the returned *batch report*
        carries the exact ledger delta of the whole call -- counted once
        in :meth:`attributed_io`, so the accounting identity still holds.

        Pagination (``limit``/``cursor``) applies per request as usual.
        A batch runs cache-bypassing iff any request asks for
        ``consistency="fresh"``.
        """
        reqs = [self._coerce(request) for request in requests]
        consistency = (
            "fresh" if any(r.consistency == "fresh" for r in reqs) else "cached"
        )
        plans = [self.backend.plan(r) for r in reqs]
        self._san_pre()
        before = self.backend.snapshot()
        # repro: calls(ShardedServiceBackend.execute_many)
        executed = self.backend.execute_many([r.rect for r in reqs], consistency)
        delta = self.backend.snapshot() - before
        results, total_k, predicted = self._batch_results(reqs, plans, executed)
        batch_report = ExecutionReport(
            backend=self.backend.name,
            kind=KIND_BATCH,
            variant=KIND_BATCH,
            structure=KIND_BATCH,
            reads=delta.reads,
            writes=delta.writes,
            result_size=total_k,
            predicted_io=predicted,
        )
        self.requests_served += len(reqs)
        self._attributed += batch_report.blocks
        self._san_post(batch_report)
        return results, batch_report

    def _batch_results(
        self,
        reqs: List[QueryRequest],
        plans: List[QueryPlan],
        executed: List,
    ) -> Tuple[List[QueryResult], int, float]:
        """Per-request results of one executed batch (zero-block reports)."""
        results: List[QueryResult] = []
        total_k = 0
        predicted = 0.0
        for req, plan, (points, trace) in zip(reqs, plans, executed):
            k = len(points)
            total_k += k
            predicted += plan.predicted_io(k)
            page, next_cursor = _paginate(points, req.cursor, req.limit)
            results.append(
                QueryResult(
                    points=page,
                    total_results=k,
                    next_cursor=next_cursor,
                    plan=plan,
                    report=ExecutionReport(
                        backend=self.backend.name,
                        kind=KIND_QUERY,
                        variant=req.variant,
                        structure=plan.structure,
                        reads=0,
                        writes=0,
                        cache_hit=trace.cache_hit,
                        shards_visited=trace.shards_visited,
                        shards_pruned=trace.shards_pruned,
                        tombstone_fallback=trace.tombstone_fallback,
                        coalesced=trace.coalesced,
                        result_size=k,
                        predicted_io=plan.predicted_io(k),
                    ),
                )
            )
        return results, total_k, predicted

    def query_batch_shared(
        self, requests: Sequence[QueryLike]
    ) -> Tuple[List[QueryResult], ExecutionReport]:
        """:meth:`query_batch` for snapshot-concurrent callers.

        Any number of overlapping calls may execute concurrently,
        provided no write runs beside them -- the serving tier's
        read/write gate enforces exactly that.  Ledger accounting happens
        at **group** granularity: the call that opens a group (shared
        readers 0 -> 1) settles the books and snapshots the ledger; the
        call that closes it (readers back to 0) attributes the whole
        group's ledger delta to its own batch report and re-checks the
        partition identity; calls in between return a zero-block batch
        report.  That is the per-request discipline :meth:`query_batch`
        already applies *within* one batch, lifted to overlapping
        batches: the group delta is race-free because every reader only
        decrements after its execution returned, so the closer's
        snapshot has seen all of the group's charges.  With no overlap
        every call is both opener and closer and the behaviour matches
        :meth:`query_batch` block for block.

        A failing call just leaves the group; its ledger traffic is
        absorbed as external by the next :meth:`_san_pre`, the same
        discipline a failing single query gets.
        """
        reqs = [self._coerce(request) for request in requests]
        consistency = (
            "fresh" if any(r.consistency == "fresh" for r in reqs) else "cached"
        )
        plans = [self.backend.plan(r) for r in reqs]
        with self._books:
            if self._shared_readers == 0:
                self._san_pre()
                self._group_before = self.backend.snapshot()
            self._shared_readers += 1
        try:
            # repro: calls(ShardedServiceBackend.execute_many)
            executed = self.backend.execute_many(
                [r.rect for r in reqs], consistency
            )
        except BaseException:
            with self._books:
                self._shared_readers -= 1
                if self._shared_readers == 0:
                    self._group_before = None
            raise
        results, total_k, predicted = self._batch_results(reqs, plans, executed)
        with self._books:
            self._shared_readers -= 1
            delta: Optional[IOSnapshot] = None
            if self._shared_readers == 0:
                assert self._group_before is not None
                delta = self.backend.snapshot() - self._group_before
                self._group_before = None
            batch_report = ExecutionReport(
                backend=self.backend.name,
                kind=KIND_BATCH,
                variant=KIND_BATCH,
                structure=KIND_BATCH,
                reads=delta.reads if delta is not None else 0,
                writes=delta.writes if delta is not None else 0,
                result_size=total_k,
                predicted_io=predicted,
            )
            self.requests_served += len(reqs)
            self._attributed += batch_report.blocks
            if delta is not None:
                self._san_post(batch_report)
        return results, batch_report

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def update(self, request: UpdateRequest) -> UpdateResult:
        """Execute one write; the report charges exactly this request's
        ledger delta.

        On the legacy threshold-compact path a compaction the update
        triggers is part of its attributed charge.  On the leveled path
        the bounded incremental merge work piggybacked on the update is
        split out: it lands in :meth:`maintenance_io` (and the report's
        ``maintenance_blocks``), so the attributed charge reflects the
        update's own bounded work while the partition
        ``attributed + maintenance == total - build`` stays exact.
        """
        self._san_pre()
        before = self.backend.snapshot()
        maintenance_before = self.backend.maintenance_snapshot()
        applied = self.backend.apply(request)
        delta = self.backend.snapshot() - before
        maintenance = self.backend.maintenance_snapshot() - maintenance_before
        report = ExecutionReport(
            backend=self.backend.name,
            kind=request.op,
            variant=request.op,
            structure=self.backend.write_path,
            reads=delta.reads - maintenance.reads,
            writes=delta.writes - maintenance.writes,
            maintenance_blocks=maintenance.total,
        )
        self.requests_served += 1
        self._attributed += report.blocks
        self._maintenance += maintenance.total
        self._san_post(report)
        return UpdateResult(applied=applied, report=report)

    def insert(self, point: Point) -> UpdateResult:
        return self.update(UpdateRequest.insert(point))

    def delete(self, point: Point) -> UpdateResult:
        return self.update(UpdateRequest.delete(point))

    def execute(self, request: Request) -> Response:
        """Unified dispatch: query or update, by request type."""
        if isinstance(request, UpdateRequest):
            return self.update(request)
        return self.query(request)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.backend)

    def io_total(self) -> int:
        """Backend ledger total (build + every request served)."""
        return self.backend.io_total()

    def attributed_io(self) -> int:
        """Sum of ``report.blocks`` over every request this engine served.

        Equals ``io_total() - build_io - maintenance_io()`` whenever all
        traffic goes through the engine -- the per-request reports
        partition the ledger exactly.
        """
        return self._attributed

    def maintenance_io(self) -> int:
        """Transfers charged by engine-level maintenance (cache drops
        flushing dirty blocks), which belong to no single request."""
        return self._maintenance

    def describe(self) -> Dict[str, object]:
        return {
            "engine": {
                "requests_served": self.requests_served,
                "build_io": self.build_io,
                "attributed_io": self._attributed,
                "maintenance_io": self._maintenance,
                "io_total": self.io_total(),
            },
            "backend": self.backend.describe(),
        }

    def drop_caches(self) -> None:
        """Empty every buffer pool (cold-cache measurements charge the
        paper's worst-case cost on the next request).

        Evicting dirty frames flushes them -- those writes are charged to
        :meth:`maintenance_io`, keeping the accounting identity exact.
        """
        self._san_pre()
        before = self.backend.snapshot()
        self.backend.drop_caches()
        self._maintenance += (self.backend.snapshot() - before).total
        self._san_settle()

    def compact(self) -> None:
        """Fold pending writes into the static structures now (a no-op on
        the monolithic backend, which applies updates in place).

        Use this instead of reaching for the raw service when driving
        compaction from an external scheduler (``auto_compact=False``):
        the rebuild cost lands in :meth:`maintenance_io`, so the
        accounting identity keeps holding.
        """
        self._san_pre()
        before = self.backend.snapshot()
        self.backend.compact()
        self._maintenance += (self.backend.snapshot() - before).total
        self._san_settle()

    def drain(self, sid: Optional[int] = None) -> Dict[str, int]:
        """Pay all outstanding incremental merge debt now (a no-op on
        backends without a merge scheduler); returns the drain counters.

        The explicit drain of the leveled update path: completes the
        active merge and every queued one in one call, charging the
        remaining debt to :meth:`maintenance_io` -- the accounting
        identity keeps holding, and subsequent queries run against fully
        merged levels.  With ``sid`` only that shard's private tower is
        drained (per-shard towers make a single shard's maintenance an
        independently payable unit); its neighbours' debt is untouched.
        """
        self._san_pre()
        before = self.backend.snapshot()
        counters = self.backend.drain(sid)
        self._maintenance += (self.backend.snapshot() - before).total
        self._san_settle()
        return counters

    def split_shard(self, sid: int, cut: Optional[float] = None) -> Optional[float]:
        """Split shard ``sid`` of a sharded backend (see
        :meth:`repro.service.SkylineService.split_shard`); a no-op
        returning ``None`` on the monolithic backend.

        The split's transfers land on the service's maintenance ledger;
        the engine folds them into :meth:`maintenance_io`, so the
        accounting identity keeps holding.  Updates that trigger an
        *adaptive* split inside :meth:`update` need no special handling
        -- their reports already split out the maintenance delta.
        """
        self._san_pre()
        before = self.backend.snapshot()
        cut = self.backend.split_shard(sid, cut)
        self._maintenance += (self.backend.snapshot() - before).total
        self._san_settle()
        return cut

    def merge_shards(self, sid: int) -> Optional[float]:
        """Merge shards ``sid`` and ``sid + 1`` of a sharded backend (see
        :meth:`repro.service.SkylineService.merge_shards`); a no-op
        returning ``None`` on the monolithic backend.  Charged like
        :meth:`split_shard`."""
        self._san_pre()
        before = self.backend.snapshot()
        cut = self.backend.merge_shards(sid)
        self._maintenance += (self.backend.snapshot() - before).total
        self._san_settle()
        return cut

    def fold_shard(self, sid: int) -> int:
        """Fold shard ``sid`` of a sharded backend in place (see
        :meth:`repro.service.SkylineService.fold_shard`); a no-op
        returning 0 on the monolithic backend.  Charged like
        :meth:`split_shard`."""
        self._san_pre()
        before = self.backend.snapshot()
        touched = self.backend.fold_shard(sid)
        self._maintenance += (self.backend.snapshot() - before).total
        self._san_settle()
        return touched

    def close(self) -> int:
        """Shut the backend down cleanly (WAL flush on a durable service).

        The flush's ledger charge lands in :meth:`maintenance_io`, so the
        accounting identity still holds after shutdown.
        """
        self._san_pre()
        before = self.backend.snapshot()
        flushed = self.backend.close()
        self._maintenance += (self.backend.snapshot() - before).total
        self._san_settle()
        return flushed
